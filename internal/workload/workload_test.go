package workload

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestMixRatios(t *testing.T) {
	for _, mix := range append(MemslapMixes(), YCSBMixes()...) {
		sum := mix.Read + mix.Update + mix.Insert + mix.RMW + mix.Scan
		if sum != 100 {
			t.Errorf("%s: ratios sum to %d", mix.Name, sum)
		}
		if err := mix.Validate(); err != nil {
			t.Errorf("%s: preset mix rejected: %v", mix.Name, err)
		}
	}
}

func TestMixValidateRejectsMalformed(t *testing.T) {
	cases := []Mix{
		{Name: "under", Read: 50, Update: 10},          // sums to 60
		{Name: "over", Read: 90, Update: 20},           // sums to 110
		{Name: "neg", Read: 120, Update: -20},          // sums to 100 but negative
		{Name: "empty"},                                // sums to 0
		{Name: "neg-scan", Read: 100, Scan: -0x7fffffff}, // negative overflow bait
	}
	for _, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted malformed mix %+v", m.Name, m)
		}
		if _, err := NewGenerator(m, 100, 1); err == nil {
			t.Errorf("%s: NewGenerator accepted malformed mix %+v", m.Name, m)
		}
	}
}

func TestGeneratorRespectsMix(t *testing.T) {
	mix := Mix{Name: "t", Read: 90, Update: 10}
	g, err := NewGenerator(mix, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[OpKind]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	readFrac := float64(counts[OpRead]) / n
	if readFrac < 0.88 || readFrac > 0.92 {
		t.Errorf("read fraction = %.3f, want ~0.90", readFrac)
	}
	if counts[OpInsert] != 0 || counts[OpScan] != 0 {
		t.Errorf("unexpected ops: %v", counts)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := NewGenerator(YCSBMixes()[0], 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(YCSBMixes()[0], 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("op %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestInsertsUseFreshKeys(t *testing.T) {
	g, err := NewGenerator(Mix{Name: "i", Insert: 100}, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Key < 100 {
			t.Fatalf("insert reused preloaded key %d", op.Key)
		}
		if seen[op.Key] {
			t.Fatalf("insert key %d repeated", op.Key)
		}
		seen[op.Key] = true
	}
}

// Regression: inserts must grow the readable key space.  Before the
// fix, reads drew from the fixed initial [0, keys) while inserts
// allocated from nextIns upward, so YCSB-D ("insert, then read mostly
// recent") never read a single inserted record.
func TestReadsReachInsertedKeys(t *testing.T) {
	var ycsbD Mix
	for _, m := range YCSBMixes() {
		if m.Name == "YCSB-D" {
			ycsbD = m
		}
	}
	if ycsbD.Name == "" {
		t.Fatal("YCSB-D preset missing")
	}
	const initial = 100
	g, err := NewGenerator(ycsbD, initial, 11)
	if err != nil {
		t.Fatal(err)
	}
	inserted, readInserted := 0, 0
	for i := 0; i < 50000; i++ {
		op := g.Next()
		switch op.Kind {
		case OpInsert:
			inserted++
		case OpRead:
			if op.Key >= initial {
				readInserted++
			}
		}
	}
	if inserted == 0 {
		t.Fatal("YCSB-D issued no inserts in 50k ops")
	}
	if readInserted == 0 {
		t.Errorf("YCSB-D read 0 inserted keys across 50k ops (%d inserts issued)", inserted)
	}
}

// Statistical check: observed op frequencies match the mix ratios
// within tolerance for every preset.
func TestGeneratorFrequenciesMatchMix(t *testing.T) {
	for _, mix := range append(MemslapMixes(), YCSBMixes()...) {
		g, err := NewGenerator(mix, 1000, 99)
		if err != nil {
			t.Fatal(err)
		}
		const n = 50000
		counts := map[OpKind]int{}
		for i := 0; i < n; i++ {
			counts[g.Next().Kind]++
		}
		want := map[OpKind]int{
			OpRead: mix.Read, OpUpdate: mix.Update, OpInsert: mix.Insert,
			OpRMW: mix.RMW, OpScan: mix.Scan,
		}
		for kind, pct := range want {
			got := 100 * float64(counts[kind]) / n
			if diff := got - float64(pct); diff < -1.5 || diff > 1.5 {
				t.Errorf("%s: %v frequency %.2f%%, want %d%% ±1.5", mix.Name, kind, got, pct)
			}
		}
	}
}

// Zipf skew sanity: at theta 0.99 the top 1% of keys should receive a
// large majority of draws (theoretical share ≈ 50% for n=10^4; assert
// a conservative floor well above the 1% uniform share).
func TestZipfTopPercentDominates(t *testing.T) {
	const n = 10000
	z := NewZipf(n, 0.99, 13)
	counts := make([]int, n)
	const draws = 300000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := 0
	for _, c := range counts[:n/100] {
		top += c
	}
	if share := float64(top) / draws; share < 0.35 {
		t.Errorf("top-1%% of keys drew %.1f%% of accesses, want ≥35%% at theta 0.99", 100*share)
	}
}

func TestZipfInRangeAndSkewed(t *testing.T) {
	const n = 1000
	z := NewZipf(n, 0.99, 7)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k >= n {
			t.Fatalf("zipf out of range: %d", k)
		}
		counts[k]++
	}
	// Skew: the most popular key should absorb far more than uniform
	// share (uniform = draws/n = 200).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 10*draws/n {
		t.Errorf("zipf max popularity %d too uniform", max)
	}
}

func TestValueDeterministic(t *testing.T) {
	if err := quick.Check(func(key uint64) bool {
		a := Value(key, 64)
		b := Value(key, 64)
		if len(a) != 64 {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}
