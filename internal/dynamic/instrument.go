package dynamic

import (
	"deepmc/internal/dsa"
	"deepmc/internal/ir"
)

// Plan is the static instrumentation plan (step ⑤ of Figure 8): the set
// of instructions that need runtime tracking calls.  DeepMC instruments
// only persistent-memory accesses inside programmer-annotated epoch or
// strand regions, which is what keeps the runtime overhead low — the
// Stats fields quantify exactly how much instrumentation the DSA-informed
// plan avoids.
type Plan struct {
	// Sites lists the instructions that receive tracking calls.
	Sites map[ir.InstrRef]bool
	// TotalMemOps counts all load/store/memcopy/memset sites in the
	// module.
	TotalMemOps int
	// PersistentMemOps counts sites the DSA proved to touch NVM.
	PersistentMemOps int
	// AnnotatedMemOps counts persistent sites inside epoch/strand regions
	// (the instrumented set under the default scope).
	AnnotatedMemOps int
}

// Instrument computes the plan for a module.  When onlyAnnotated is
// false, every persistent access is instrumented (the full-tracking
// ablation).
//
// Region membership is approximated syntactically per block path: an
// instruction is "annotated" if an epoch/strand begin dominates it in
// instruction order within its function (the frameworks under study open
// and close regions in the same function, so this matches the paper's
// pre-defined annotations).
func Instrument(m *ir.Module, a *dsa.Analysis, onlyAnnotated bool) *Plan {
	p := &Plan{Sites: make(map[ir.InstrRef]bool)}
	for _, fname := range m.FuncNames() {
		f := m.Funcs[fname]
		g := a.Graph(fname)
		depth := 0
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				switch in.Op {
				case ir.OpEpochBegin, ir.OpStrandBegin:
					depth++
					continue
				case ir.OpEpochEnd, ir.OpStrandEnd:
					if depth > 0 {
						depth--
					}
					continue
				case ir.OpLoad, ir.OpStore, ir.OpMemCopy, ir.OpMemSet:
				default:
					continue
				}
				p.TotalMemOps++
				cell := cellOfOperand(g, in.Args[0])
				if !cell.IsPtr() || !cell.Obj.Persistent() {
					continue
				}
				p.PersistentMemOps++
				inRegion := depth > 0
				if inRegion {
					p.AnnotatedMemOps++
				}
				if inRegion || !onlyAnnotated {
					p.Sites[ir.InstrRef{Func: fname, Block: blk.Name, Index: i}] = true
				}
			}
		}
	}
	return p
}

func cellOfOperand(g *dsa.Graph, v ir.Value) dsa.Cell {
	if r, ok := v.(ir.Reg); ok {
		return g.RegCell(r.Name)
	}
	return dsa.Cell{}
}
