package dynamic

import (
	"testing"

	"deepmc/internal/interp"
)

// TestAddrOfInjective is the regression test for the shadow-address
// aliasing bug: the old encoding (id<<32 | uint32(off)) truncated the
// offset to 32 bits, so offsets 4 GiB apart — and negative offsets —
// collapsed onto the same shadow address and produced false
// happens-before conflicts between unrelated words.
func TestAddrOfInjective(t *testing.T) {
	r := NewRuntime(false)
	obj := &interp.Object{ID: 1, Persistent: true, Slots: make([]interp.Val, 4)}
	other := &interp.Object{ID: 2, Persistent: true, Slots: make([]interp.Val, 4)}

	offsets := []int{0, 8, 24, 1 << 32, (1 << 32) + 8, (1 << 33), -8, -(1 << 32) - 8}
	seen := map[uint64]int{}
	for _, off := range offsets {
		a := r.addrOf(obj, off)
		if prev, dup := seen[a]; dup {
			t.Errorf("offsets %d and %d alias to shadow address %#x", prev, off, a)
		}
		seen[a] = off
	}

	// The mapping must be stable: the same (object, offset) pair always
	// resolves to the same cell.
	for _, off := range offsets {
		first := r.addrOf(obj, off)
		if again := r.addrOf(obj, off); again != first {
			t.Errorf("offset %d: address changed across calls (%#x vs %#x)", off, first, again)
		}
	}

	// Distinct objects never share cells, in-range or out.
	for _, off := range offsets {
		a := r.addrOf(other, off)
		if prev, dup := seen[a]; dup {
			t.Errorf("obj 2 offset %d aliases obj 1 offset %d at %#x", off, prev, a)
		}
	}
}

// TestAddrOfInRangeContiguous pins the fast path: offsets inside the
// slot array map onto one contiguous region, so granule arithmetic in
// OnWrite/OnRead lands on adjacent shadow words.
func TestAddrOfInRangeContiguous(t *testing.T) {
	r := NewRuntime(false)
	obj := &interp.Object{ID: 7, Persistent: true, Slots: make([]interp.Val, 3)}
	base := r.addrOf(obj, 0)
	for off := 0; off < 24; off += 8 {
		if got := r.addrOf(obj, off); got != base+uint64(off) {
			t.Errorf("offset %d: got %#x, want contiguous %#x", off, got, base+uint64(off))
		}
	}
}
