package dynamic

import (
	"deepmc/internal/interp"
)

// Runtime adapts interpreter events to the runtime checker — it plays the
// role of the calls the instrumenter injects into the IR (step ⑤ of
// Figure 8).  Accesses outside annotated epoch/strand regions are not
// tracked when OnlyAnnotated is set, mirroring the paper's low-overhead
// instrumentation scope.
type Runtime struct {
	Checker *Checker
	// OnlyAnnotated restricts tracking to code inside epoch or strand
	// regions (the paper's default).  When false every persistent access
	// is tracked (ablation: full instrumentation).
	OnlyAnnotated bool

	curStrand   int64
	strandDepth int
	epochDepth  int
}

// NewRuntime wires a fresh checker to an interpreter hook set.
func NewRuntime(onlyAnnotated bool) *Runtime {
	return &Runtime{Checker: NewChecker(), OnlyAnnotated: onlyAnnotated, curStrand: 0}
}

var _ interp.Hooks = (*Runtime)(nil)

func addrOf(obj *interp.Object, off int) uint64 {
	return uint64(obj.ID)<<32 | uint64(uint32(off))
}

func (r *Runtime) tracked() bool {
	return !r.OnlyAnnotated || r.strandDepth > 0 || r.epochDepth > 0
}

// OnWrite records each 8-byte granule of the write.
func (r *Runtime) OnWrite(obj *interp.Object, off, size int, fn, file string, line int) {
	if !r.tracked() {
		return
	}
	for g := 0; g < size; g += 8 {
		r.Checker.Write(r.curStrand, addrOf(obj, off+g), obj.Persistent, fn, file, line)
	}
}

// OnRead records each 8-byte granule of the read.
func (r *Runtime) OnRead(obj *interp.Object, off, size int, fn, file string, line int) {
	if !r.tracked() {
		return
	}
	for g := 0; g < size; g += 8 {
		r.Checker.Read(r.curStrand, addrOf(obj, off+g), obj.Persistent, fn, file, line)
	}
}

// OnFlush is not a dependence-carrying access; nothing to track.
func (r *Runtime) OnFlush(*interp.Object, int, int, string, string, int) {}

// OnFence outside strand regions orders all strands (a global persist
// barrier); inside a strand it only orders that strand's own persists,
// which the per-strand clock already captures.
func (r *Runtime) OnFence(string, string, int) {
	if r.strandDepth == 0 {
		r.Checker.GlobalFence()
	}
}

func (r *Runtime) OnTxBegin(string, string, int)                         {}
func (r *Runtime) OnTxEnd(string, string, int)                           {}
func (r *Runtime) OnTxAdd(*interp.Object, int, int, string, string, int) {}

func (r *Runtime) OnEpochBegin(string, string, int) { r.epochDepth++ }
func (r *Runtime) OnEpochEnd(string, string, int) {
	if r.epochDepth > 0 {
		r.epochDepth--
	}
}

func (r *Runtime) OnStrandBegin(id int64, _, _ string, _ int) {
	r.curStrand = id
	r.strandDepth++
	r.Checker.StrandBegin(id)
}

func (r *Runtime) OnStrandEnd(id int64, _, _ string, _ int) {
	r.Checker.StrandEnd(id)
	if r.strandDepth > 0 {
		r.strandDepth--
	}
	if r.strandDepth == 0 {
		r.curStrand = 0
	}
}
