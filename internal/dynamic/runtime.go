package dynamic

import (
	"deepmc/internal/interp"
	"deepmc/internal/pmcontract"
)

// Runtime adapts interpreter events to the runtime checker — it plays the
// role of the calls the instrumenter injects into the IR (step ⑤ of
// Figure 8).  Accesses outside annotated epoch/strand regions are not
// tracked when OnlyAnnotated is set, mirroring the paper's low-overhead
// instrumentation scope.
type Runtime struct {
	Checker *Checker
	// OnlyAnnotated restricts tracking to code inside epoch or strand
	// regions (the paper's default).  When false every persistent access
	// is tracked (ablation: full instrumentation).
	OnlyAnnotated bool
	// Cov, when non-nil, accumulates the execution's persistency-event
	// edge coverage (site × strand transitions) — the feedback signal
	// the schedule fuzzer steers by.  Coverage sees every event the
	// checker would consider, including ones outside annotated regions,
	// so delay mutations that move events across region boundaries
	// still register.
	Cov *Coverage
	// Contract is the hardware persistency contract the execution
	// models; the zero value is x86 clwb/sfence.  Under a CXL contract
	// with a persistence domain (read as the whole persistent heap —
	// the runtime has no pool address space) every persistent store is
	// durable at store time, so writes are recorded pre-flushed and the
	// unflushed-RAW escalation (DMC-D03) cannot arise.
	Contract pmcontract.Contract

	curStrand   int64
	strandDepth int
	epochDepth  int

	shadowBase map[int]uint64
	shadowSize map[int]uint64
	overflow   map[shadowKey]uint64
	nextShadow uint64
}

// shadowKey interns shadow cells for offsets outside an object's
// contiguous region (negative, or past the slot array).
type shadowKey struct {
	obj int
	off int
}

// NewRuntime wires a fresh checker to an interpreter hook set.
func NewRuntime(onlyAnnotated bool) *Runtime {
	return &Runtime{
		Checker:       NewChecker(),
		OnlyAnnotated: onlyAnnotated,
		curStrand:     0,
		shadowBase:    make(map[int]uint64),
		shadowSize:    make(map[int]uint64),
		overflow:      make(map[shadowKey]uint64),
		nextShadow:    1 << 12, // keep address 0 unused
	}
}

var _ interp.Hooks = (*Runtime)(nil)
var _ interp.ContractHolder = (*Runtime)(nil)

// PersistencyContract exposes the modeled hardware contract so
// decorators (faultinj.Wrap) can keep injected behavior legal under it.
func (r *Runtime) PersistencyContract() pmcontract.Contract { return r.Contract }

// addrOf maps an (object, byte offset) pair to a shadow address for the
// happens-before checker.  Each object gets a contiguous region sized to
// its slot array on first touch, allocated from a bump pointer;
// out-of-range and negative offsets intern a fresh 8-byte cell.  The
// mapping is injective for every offset — the previous encoding
// (id<<32 | uint32(off)) truncated offsets to 32 bits, so two offsets
// 4 GiB apart (or a negative one) aliased to one shadow address and
// produced false happens-before conflicts.
func (r *Runtime) addrOf(obj *interp.Object, off int) uint64 {
	base, ok := r.shadowBase[obj.ID]
	if !ok {
		size := uint64(len(obj.Slots)) * 8
		if size == 0 {
			size = 8
		}
		base = r.nextShadow
		r.nextShadow += size
		r.shadowBase[obj.ID] = base
		r.shadowSize[obj.ID] = size
	}
	if off >= 0 && uint64(off) < r.shadowSize[obj.ID] {
		return base + uint64(off)
	}
	k := shadowKey{obj: obj.ID, off: off}
	a, ok := r.overflow[k]
	if !ok {
		a = r.nextShadow
		r.nextShadow += 8
		r.overflow[k] = a
	}
	return a
}

func (r *Runtime) tracked() bool {
	return !r.OnlyAnnotated || r.strandDepth > 0 || r.epochDepth > 0
}

// OnWrite records each 8-byte granule of the write.
func (r *Runtime) OnWrite(obj *interp.Object, off, size int, fn, file string, line int) {
	if r.Cov != nil {
		r.Cov.hit(fn, file, line, covWrite, r.curStrand)
	}
	if !r.tracked() {
		return
	}
	autoPersist := obj.Persistent && r.Contract.HasDomain()
	for g := 0; g < size; g += 8 {
		a := r.addrOf(obj, off+g)
		r.Checker.Write(r.curStrand, a, obj.Persistent, fn, file, line)
		if autoPersist {
			// In-domain stores are durable at store time: record the
			// granule flushed immediately so a racing read is ordinary
			// RAW (DMC-D02), never unflushed RAW (DMC-D03).
			r.Checker.Flush(r.curStrand, a, obj.Persistent, fn, file, line)
		}
	}
}

// OnRead records each 8-byte granule of the read.
func (r *Runtime) OnRead(obj *interp.Object, off, size int, fn, file string, line int) {
	if r.Cov != nil {
		r.Cov.hit(fn, file, line, covRead, r.curStrand)
	}
	if !r.tracked() {
		return
	}
	for g := 0; g < size; g += 8 {
		r.Checker.Read(r.curStrand, r.addrOf(obj, off+g), obj.Persistent, fn, file, line)
	}
}

// OnFlush marks each covered granule's pending write as flushed, so a
// later racing read is ordinary RAW rather than unflushed RAW
// (DMC-D03).  A delayed (deferred-to-fence) flush therefore widens the
// window in which reads observe never-flushed data — exactly the state
// the schedule fuzzer's delay injection hunts for.
func (r *Runtime) OnFlush(obj *interp.Object, off, size int, fn, file string, line int) {
	if r.Cov != nil {
		r.Cov.hit(fn, file, line, covFlush, r.curStrand)
	}
	if !r.tracked() {
		return
	}
	for g := 0; g < size; g += 8 {
		r.Checker.Flush(r.curStrand, r.addrOf(obj, off+g), obj.Persistent, fn, file, line)
	}
}

// OnFence outside strand regions orders all strands (a global persist
// barrier); inside a strand it only orders that strand's own persists,
// which the per-strand clock already captures.
func (r *Runtime) OnFence(fn, file string, line int) {
	if r.Cov != nil {
		r.Cov.hit(fn, file, line, covFence, r.curStrand)
	}
	if r.strandDepth == 0 {
		r.Checker.GlobalFence()
	}
}

func (r *Runtime) OnTxBegin(string, string, int)                         {}
func (r *Runtime) OnTxEnd(string, string, int)                           {}
func (r *Runtime) OnTxAdd(*interp.Object, int, int, string, string, int) {}

func (r *Runtime) OnEpochBegin(string, string, int) { r.epochDepth++ }
func (r *Runtime) OnEpochEnd(string, string, int) {
	if r.epochDepth > 0 {
		r.epochDepth--
	}
}

func (r *Runtime) OnStrandBegin(id int64, fn, file string, line int) {
	r.curStrand = id
	r.strandDepth++
	if r.Cov != nil {
		r.Cov.hit(fn, file, line, covStrand, id)
	}
	r.Checker.StrandBegin(id)
}

func (r *Runtime) OnStrandEnd(id int64, fn, file string, line int) {
	if r.Cov != nil {
		r.Cov.hit(fn, file, line, covStrand, -id)
	}
	r.Checker.StrandEnd(id)
	if r.strandDepth > 0 {
		r.strandDepth--
	}
	if r.strandDepth == 0 {
		r.curStrand = 0
	}
}
