package dynamic

import (
	"hash/fnv"
	"math/bits"
)

// covBits is the edge-map size in bits.  64K edges keeps a Coverage at
// 8 KiB — cheap enough to allocate per execution — while staying large
// enough that the PIR corpus programs (hundreds of distinct sites ×
// strand ids) collide rarely.
const covBits = 1 << 16

// event-kind tags folded into the site hash, so a flush and a write at
// the same source line count as distinct coverage sites.
const (
	covWrite byte = iota + 1
	covRead
	covFlush
	covFence
	covStrand
)

// Coverage is an AFL-style edge bitmap over runtime persistency events:
// each event hashes its site (function, file, line, event kind, strand
// id) and the transition previous-site → current-site sets one bit.
// Because sites are content-hashed rather than interned in discovery
// order, bit indices are stable across executions and across genomes —
// a corpus-global Coverage accumulated over many runs is meaningful.
//
// The strand id is part of the site, so the same program point executed
// by a different strand is a different edge: schedule mutations that
// only move work between strands still produce coverage signal, which
// is what lets the fuzzer climb toward unexplored interleavings rather
// than only unexplored code.
//
// Coverage is not safe for concurrent use; the instrumented interpreter
// is single-threaded per execution, and merging into a shared global
// map is the caller's (single-threaded fuzz loop's) job.
type Coverage struct {
	bits [covBits / 64]uint64
	prev uint32
}

// NewCoverage returns an empty edge map.
func NewCoverage() *Coverage { return &Coverage{} }

// siteHash content-hashes one event site.  FNV-1a over the identifying
// strings and scalars: deterministic across processes (no map
// iteration, no per-run interning).
func siteHash(fn, file string, line int, kind byte, strand int64) uint32 {
	h := fnv.New32a()
	h.Write([]byte(fn))
	h.Write([]byte{0})
	h.Write([]byte(file))
	h.Write([]byte{0, kind,
		byte(line), byte(line >> 8), byte(line >> 16),
		byte(strand), byte(strand >> 8), byte(strand >> 16)})
	return h.Sum32()
}

// hit records the edge from the previous event to this one.
func (c *Coverage) hit(fn, file string, line int, kind byte, strand int64) {
	cur := siteHash(fn, file, line, kind, strand)
	idx := (cur ^ (c.prev >> 1)) % covBits
	c.bits[idx/64] |= 1 << (idx % 64)
	c.prev = cur
}

// Count returns the number of distinct edges recorded.
func (c *Coverage) Count() int {
	n := 0
	for _, w := range c.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// NewEdges counts edges present in c but not in global.
func (c *Coverage) NewEdges(global *Coverage) int {
	n := 0
	for i, w := range c.bits {
		n += bits.OnesCount64(w &^ global.bits[i])
	}
	return n
}

// MergeInto folds c's edges into global.
func (c *Coverage) MergeInto(global *Coverage) {
	for i, w := range c.bits {
		global.bits[i] |= w
	}
}
