package dynamic

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// This file checks the checker's central optimization: the global-fence
// epoch fast path (ordered()'s `prev.gepoch < now` shortcut) must be
// exactly equivalent to a pure vector-clock encoding of the same order,
// where a global fence publishes every strand's clock into a fence VC
// and then advances them (so post-fence accesses are distinguishable).
// The oracle below reimplements the full verdict pipeline with ONLY
// vector clocks — no epoch counter — and random strand/lock histories
// must produce identical warning sets at several strand widths.

// oAccess mirrors the checker's access record, clock-only.
type oAccess struct {
	strand int64
	clock  uint64
	line   int
}

type oCell struct {
	hasWrite bool
	write    oAccess
	flushed  bool
	reads    []oAccess
}

// oracle is the pure-VC reimplementation.
type oracle struct {
	vcs   map[int64]VC
	own   map[int64]uint64
	next  map[int64]uint64
	gvc   map[int64]uint64 // fence-published clocks; absent strand = never covered
	locks map[int]VC
	cells map[uint64]*oCell
	// warns collects "code|line", deduped by line like report.Add (all
	// dynamic warnings share rule and file, so Key() dedupes on line).
	warns    []string
	warnSeen map[int]bool
}

func newOracle() *oracle {
	return &oracle{
		vcs:      make(map[int64]VC),
		own:      make(map[int64]uint64),
		next:     make(map[int64]uint64),
		gvc:      make(map[int64]uint64),
		locks:    make(map[int]VC),
		cells:    make(map[uint64]*oCell),
		warnSeen: make(map[int]bool),
	}
}

func (o *oracle) strand(id int64) VC {
	if v, ok := o.vcs[id]; ok {
		return v
	}
	v := VC{id: 0}
	o.vcs[id] = v
	o.own[id] = 0
	o.next[id] = 1
	return v
}

func (o *oracle) bump(id int64) {
	o.strand(id)
	o.vcs[id][id] = o.next[id]
	o.own[id] = o.next[id]
	o.next[id]++
}

// fence publishes every known strand's clock, then advances them: the
// VC rendering of "everything before the barrier happens-before
// everything after".
func (o *oracle) fence() {
	ids := make([]int64, 0, len(o.vcs))
	for id := range o.vcs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if o.own[id] == 0 {
			// Never-bumped strands (e.g. accesses outside any strand
			// region) stay at clock 0: their accesses are vacuously
			// ordered before everything (HappensBefore's `>= 0`), the
			// checker's pre-strand-history convention.  Bumping them here
			// would break that vacuity and diverge from the epoch path.
			continue
		}
		o.gvc[id] = o.own[id]
		o.bump(id)
	}
}

func (o *oracle) acquire(id int64, lock int) {
	o.strand(id)
	if lv, ok := o.locks[lock]; ok {
		o.vcs[id].Join(lv)
	}
}

func (o *oracle) release(id int64, lock int) {
	o.strand(id)
	o.vcs[id][id] = o.own[id]
	lv, ok := o.locks[lock]
	if !ok {
		lv = make(VC)
		o.locks[lock] = lv
	}
	lv.Join(o.vcs[id])
	o.bump(id)
}

func (o *oracle) ordered(cur int64, prev *oAccess) bool {
	if prev.strand == cur {
		return true
	}
	if pub, ok := o.gvc[prev.strand]; ok && pub >= prev.clock {
		return true // a global persist barrier covered prev
	}
	return o.strand(cur)[prev.strand] >= prev.clock
}

func (o *oracle) warn(code string, line int) {
	if o.warnSeen[line] {
		return
	}
	o.warnSeen[line] = true
	o.warns = append(o.warns, fmt.Sprintf("%s|%d", code, line))
}

func (o *oracle) cell(addr uint64) *oCell {
	c := o.cells[addr]
	if c == nil {
		c = &oCell{}
		o.cells[addr] = c
	}
	return c
}

func (o *oracle) write(id int64, addr uint64, line int) {
	o.strand(id)
	c := o.cell(addr)
	var races []string
	if c.hasWrite && !o.ordered(id, &c.write) {
		races = append(races, "DMC-D01")
	}
	for i := range c.reads {
		if !o.ordered(id, &c.reads[i]) {
			races = append(races, "DMC-D02")
		}
	}
	c.hasWrite = true
	c.write = oAccess{strand: id, clock: o.own[id], line: line}
	c.flushed = false
	c.reads = c.reads[:0]
	for _, code := range races {
		o.warn(code, line)
	}
}

func (o *oracle) read(id int64, addr uint64, line int) {
	o.strand(id)
	c := o.cell(addr)
	if c.hasWrite && !o.ordered(id, &c.write) {
		code := "DMC-D02"
		if !c.flushed {
			code = "DMC-D03"
		}
		o.warn(code, line)
	}
	rec := oAccess{strand: id, clock: o.own[id], line: line}
	updated := false
	for i := range c.reads {
		if c.reads[i].strand == id {
			c.reads[i] = rec
			updated = true
			break
		}
	}
	if !updated {
		c.reads = append(c.reads, rec)
	}
}

func (o *oracle) flush(addr uint64) {
	if c := o.cells[addr]; c != nil && c.hasWrite && !c.flushed {
		c.flushed = true
	}
}

// TestEpochFastPathAgreesWithVectorClocks drives random strand/lock
// histories through the production checker and the pure-VC oracle at
// widths 1, 2, and 8 strands, with fixed seeds, and requires identical
// warning sets (code + site).  Any divergence means the epoch shortcut
// and the slow path disagree on some happens-before verdict.
func TestEpochFastPathAgreesWithVectorClocks(t *testing.T) {
	const (
		opsPerHistory = 300
		seedsPerWidth = 40
		addrs         = 8
		lockCount     = 2
	)
	for _, strands := range []int{1, 2, 8} {
		for seed := int64(1); seed <= seedsPerWidth; seed++ {
			rng := rand.New(rand.NewSource(seed*1000 + int64(strands)))
			c := NewChecker()
			o := newOracle()
			for op := 1; op <= opsPerHistory; op++ {
				id := int64(rng.Intn(strands + 1)) // 0 = outside strand regions
				addr := uint64(0x1000 + 8*rng.Intn(addrs))
				lock := rng.Intn(lockCount)
				switch k := rng.Intn(100); {
				case k < 30:
					c.Write(id, addr, true, "h", "h.c", op)
					o.write(id, addr, op)
				case k < 60:
					c.Read(id, addr, true, "h", "h.c", op)
					o.read(id, addr, op)
				case k < 75:
					c.Flush(id, addr, true, "h", "h.c", op)
					o.flush(addr)
				case k < 82:
					c.GlobalFence()
					o.fence()
				case k < 88:
					c.Acquire(id, lock)
					o.acquire(id, lock)
				case k < 94:
					c.Release(id, lock)
					o.release(id, lock)
				default:
					c.StrandBegin(id) // a bump, like StrandEnd
					o.bump(id)
				}
			}
			var got []string
			for _, w := range c.Report().Warnings {
				got = append(got, fmt.Sprintf("%s|%d", w.EffectiveCode(), w.Line))
			}
			sort.Strings(got)
			want := append([]string(nil), o.warns...)
			sort.Strings(want)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("strands=%d seed=%d: checker and pure-VC oracle disagree\nchecker: %v\noracle:  %v",
					strands, seed, got, want)
			}
		}
	}
}
