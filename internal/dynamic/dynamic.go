// Package dynamic implements DeepMC's runtime analysis library (paper
// §4.4): happens-before detection of WAW and RAW dependences between
// strands over persistent memory, using shadow segments.
//
// The design mirrors the paper's customized ThreadSanitizer runtime:
//
//   - The persistent address space is mapped to shadow segments; each
//     segment tracks the access history of one aligned address range and
//     carries its own lock, so concurrent application threads touching
//     disjoint regions do not contend.  Only persistent addresses are
//     shadowed (the paper's scalability argument), unless the TrackAll
//     ablation is enabled.
//   - Happens-before has a two-tier representation.  A global persist
//     barrier outside strand regions orders everything before it against
//     everything after it; since every transaction commit fences, this is
//     by far the most common edge, and it is represented by one atomic
//     epoch counter consulted on the fast path.  Strand begin/end and
//     lock acquire/release edges use per-strand vector clocks, compared
//     only when the epoch test is inconclusive.
//   - Shadow cells are FastTrack-style: one write epoch plus a read
//     vector bounded at one entry per strand.
//
// Conflicting accesses from unordered strands produce WARNING reports
// with both access sites, exactly the elaborate error reports §4.4
// describes.
package dynamic

import (
	"fmt"
	"sync"
	"sync/atomic"

	"deepmc/internal/report"
)

// segmentShift sets the shadow segment granularity (bytes per segment).
const segmentShift = 12 // 4 KiB segments, like the paper's page-mapped shadow

// VC is a vector clock mapping strand/thread ids to logical times.
type VC map[int64]uint64

// Copy returns an independent copy.
func (v VC) Copy() VC {
	c := make(VC, len(v))
	for k, t := range v {
		c[k] = t
	}
	return c
}

// Join folds o into v (pointwise max).
func (v VC) Join(o VC) {
	for k, t := range o {
		if v[k] < t {
			v[k] = t
		}
	}
}

// HappensBefore reports whether epoch (s,c) is ordered before the clock v.
func (v VC) HappensBefore(s int64, c uint64) bool { return v[s] >= c }

// access is one recorded access site.
type access struct {
	strand int64
	clock  uint64
	gepoch uint64 // global fence epoch at access time
	fn     string
	file   string
	line   int
}

// shadowCell is the FastTrack state of one address.
type shadowCell struct {
	hasWrite bool
	write    access
	// flushed reports whether a flush covered this address since the
	// last write; flushSite is that flush's site.  A racing read of an
	// unflushed write is the deep variant of RAW (DMC-D03): the value
	// consumed never even reached the write-back stage, so a durable
	// side effect built on it is guaranteed inconsistent after a crash.
	flushed   bool
	flushSite access
	// reads holds at most one entry per strand since the last write.
	reads []access
}

// segment shadows one aligned address range with its own lock.
type segment struct {
	mu    sync.Mutex
	cells map[uint64]*shadowCell
}

// segTable is one stripe of the segment directory.  The padding keeps
// neighbouring stripes off each other's cache line, so uncontended
// stripe locks stay uncontended at the hardware level too.
type segTable struct {
	mu       sync.RWMutex
	segments map[uint64]*segment
	_        [96]byte
}

// segRef caches one strand's recent segment lookups.  Segments are
// created once and never deleted or replaced, so a cached pointer can
// never go stale — at worst it misses and the stripe resolves it.
// The cache is plain (non-atomic, allocation-free) state: a strand's
// memory events are issued by its owning thread only, which is the
// same single-writer discipline the rest of strandState relies on.
type segRef struct {
	key uint64
	s   *segment
}

// segCacheSlots sizes the per-strand direct-mapped segment cache
// (power of two).  One slot is not enough: a transactional store
// alternates between the log, index, and home segments, and a single
// entry thrashes on exactly that pattern.
const segCacheSlots = 4

// strandState is one strand/thread's clock state.  The vc map is guarded
// by mu; own mirrors vc[id] for lock-free fast-path reads (only the
// owning thread and strand/lock operations advance it).
type strandState struct {
	id   int64
	mu   sync.Mutex
	vc   VC
	next uint64
	own  atomic.Uint64
	// lastSeg short-circuits the stripe directory for the common case
	// of accesses landing in recently used shadow segments
	// (direct-mapped by the segment key's low bits; owned by the
	// strand's issuing thread, see segRef).
	lastSeg [segCacheSlots]segRef
}

// Stats surfaces the checker's footprint for the scalability evaluation.
type Stats struct {
	Segments   int
	Cells      int
	Writes     uint64
	Reads      uint64
	Flushes    uint64
	RacesFound int
}

// Checker is the runtime analysis library.  It is safe for concurrent
// use by application threads.
type Checker struct {
	// TrackAll shadows volatile memory too (ablation; the paper tracks
	// only persistent regions).
	TrackAll bool
	// Disabled suppresses the dynamic detectors whose diagnostic codes
	// (report.CodeDynWAW / report.CodeDynRAW) it maps to true.  Set
	// before the run starts; gating happens at the emission site only,
	// so the happens-before machinery is unperturbed and the other
	// detector's verdicts are unchanged.
	Disabled map[string]bool

	gepoch atomic.Uint64 // global fence counter

	// stripes shards the shadow-segment directory; len is a power of
	// two so stripe selection is a mask.  segCache enables the
	// per-strand last-segment shortcut (off in the single-stripe
	// configuration, which reproduces the historical global-mutex
	// behaviour for A/B measurement).
	stripes  []segTable
	segCache bool

	clocks sync.Map // int64 -> *strandState

	lockMu sync.Mutex // guards locks (off the report path)
	locks  map[any]VC

	mu      sync.Mutex // guards rep and races
	rep     *report.Report
	races   int
	writes  atomic.Uint64
	reads   atomic.Uint64
	flushes atomic.Uint64
}

// defaultStripes is the shard count of the shadow-segment directory.
const defaultStripes = 64

// NewChecker creates an empty runtime checker with the default
// directory sharding.
func NewChecker() *Checker { return NewCheckerStripes(defaultStripes) }

// NewCheckerStripes creates a checker whose shadow-segment directory is
// sharded across n stripes (rounded up to a power of two).  n <= 1
// yields the historical single-global-mutex layout with the per-strand
// segment cache disabled — the pre-shard baseline the soak bench
// compares against.
func NewCheckerStripes(n int) *Checker {
	if n < 1 {
		n = 1
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	c := &Checker{
		stripes:  make([]segTable, pow),
		segCache: pow > 1,
		locks:    make(map[any]VC),
		rep:      report.New(),
	}
	for i := range c.stripes {
		c.stripes[i].segments = make(map[uint64]*segment)
	}
	return c
}

// Report returns the accumulated warnings.
func (c *Checker) Report() *report.Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rep.Sort()
	return c.rep
}

// StatsSnapshot returns current footprint counters.
func (c *Checker) StatsSnapshot() Stats {
	segs, cells := 0, 0
	for i := range c.stripes {
		t := &c.stripes[i]
		t.mu.RLock()
		segs += len(t.segments)
		for _, s := range t.segments {
			s.mu.Lock()
			cells += len(s.cells)
			s.mu.Unlock()
		}
		t.mu.RUnlock()
	}
	c.mu.Lock()
	races := c.races
	c.mu.Unlock()
	return Stats{
		Segments: segs, Cells: cells,
		Writes: c.writes.Load(), Reads: c.reads.Load(),
		Flushes:    c.flushes.Load(),
		RacesFound: races,
	}
}

// strand returns (creating) the strand state, lock-free on the hot path.
func (c *Checker) strand(id int64) *strandState {
	if v, ok := c.clocks.Load(id); ok {
		return v.(*strandState)
	}
	st := &strandState{id: id, vc: VC{id: 0}, next: 1}
	actual, _ := c.clocks.LoadOrStore(id, st)
	return actual.(*strandState)
}

// bump advances a strand's own clock component.
func (st *strandState) bump() {
	st.mu.Lock()
	st.vc[st.id] = st.next
	st.own.Store(st.next)
	st.next++
	st.mu.Unlock()
}

// StrandBegin opens (or resumes) a strand.  It is concurrent with other
// live strands; ordering against pre-fence history comes from the global
// epoch.
func (c *Checker) StrandBegin(id int64) { c.strand(id).bump() }

// StrandEnd closes a strand region.  The strand's writes remain visible
// in the shadow state (they may still race with later strands until a
// global fence orders them).
func (c *Checker) StrandEnd(id int64) { c.strand(id).bump() }

// GlobalFence orders every strand's past against everything that
// follows (a persist barrier outside strand regions): one atomic bump.
func (c *Checker) GlobalFence() { c.gepoch.Add(1) }

// Acquire orders the thread after the last Release of the lock.
func (c *Checker) Acquire(id int64, lock any) {
	st := c.strand(id)
	c.lockMu.Lock()
	lv, ok := c.locks[lock]
	if ok {
		st.mu.Lock()
		st.vc.Join(lv)
		st.mu.Unlock()
	}
	c.lockMu.Unlock()
}

// Release publishes the thread's clock through the lock, then advances
// it.  The snapshot is taken BEFORE the bump (standard FastTrack
// release): accesses the thread performs after the release carry the
// new, unpublished clock and stay racy with a later acquirer.  (The
// previous bump-then-snapshot order published the post-release clock,
// silently ordering the releaser's subsequent accesses — a missed-race
// window the epoch/VC agreement property test caught.)
func (c *Checker) Release(id int64, lock any) {
	st := c.strand(id)
	st.mu.Lock()
	st.vc[st.id] = st.own.Load()
	snapshot := st.vc.Copy()
	st.mu.Unlock()
	st.bump()
	c.lockMu.Lock()
	lv, ok := c.locks[lock]
	if !ok {
		lv = make(VC)
		c.locks[lock] = lv
	}
	lv.Join(snapshot)
	c.lockMu.Unlock()
}

// seg returns (creating) the shadow segment for an address.  The
// strand's last-segment cache answers repeat hits without touching the
// stripe lock; misses fall through to the owning stripe.
func (c *Checker) seg(st *strandState, addr uint64) *segment {
	key := addr >> segmentShift
	var slot *segRef
	if c.segCache && st != nil {
		slot = &st.lastSeg[key&(segCacheSlots-1)]
		if slot.s != nil && slot.key == key {
			return slot.s
		}
	}
	t := &c.stripes[key&uint64(len(c.stripes)-1)]
	t.mu.RLock()
	s := t.segments[key]
	t.mu.RUnlock()
	if s == nil {
		t.mu.Lock()
		if s = t.segments[key]; s == nil {
			s = &segment{cells: make(map[uint64]*shadowCell)}
			t.segments[key] = s
		}
		t.mu.Unlock()
	}
	if slot != nil {
		*slot = segRef{key: key, s: s}
	}
	return s
}

// ordered decides whether a previous access happens-before the current
// one: same strand, separated by a global fence, or vector-clock ordered
// (the slow path).
func (c *Checker) ordered(st *strandState, now uint64, prev *access) bool {
	if prev.strand == st.id {
		return true
	}
	if prev.gepoch < now {
		return true // a global persist barrier intervened
	}
	st.mu.Lock()
	hb := st.vc.HappensBefore(prev.strand, prev.clock)
	st.mu.Unlock()
	return hb
}

// Write records a persistent write by strand id at addr and checks WAW
// and read-write races against unordered prior accesses.
func (c *Checker) Write(id int64, addr uint64, persistent bool, fn, file string, line int) {
	if !persistent && !c.TrackAll {
		return
	}
	c.writes.Add(1)
	st := c.strand(id)
	now := c.gepoch.Load()
	s := c.seg(st, addr)
	s.mu.Lock()
	sc := s.cells[addr]
	if sc == nil {
		sc = &shadowCell{}
		s.cells[addr] = sc
	}
	type conflict struct {
		prev access
		kind string
	}
	var raceWith []conflict
	if sc.hasWrite && !c.ordered(st, now, &sc.write) {
		raceWith = append(raceWith, conflict{prev: sc.write, kind: "WAW"})
	}
	for i := range sc.reads {
		r := &sc.reads[i]
		if !c.ordered(st, now, r) {
			raceWith = append(raceWith, conflict{prev: *r, kind: "RAW"})
		}
	}
	sc.hasWrite = true
	sc.write = access{strand: id, clock: st.own.Load(), gepoch: now, fn: fn, file: file, line: line}
	sc.flushed = false
	sc.reads = sc.reads[:0]
	s.mu.Unlock()
	for _, cf := range raceWith {
		c.race(cf.kind, cf.prev, access{strand: id, fn: fn, file: file, line: line}, addr, false)
	}
}

// Flush records a write-back covering addr: the pending write (if any)
// is now staged, so later racing reads observe an at-least-flushed
// value and report ordinary RAW (DMC-D02) instead of unflushed RAW
// (DMC-D03).  Flushes carry no dependence edge of their own — they
// only refine what a subsequent race means.
func (c *Checker) Flush(id int64, addr uint64, persistent bool, fn, file string, line int) {
	if !persistent && !c.TrackAll {
		return
	}
	c.flushes.Add(1)
	s := c.seg(c.strand(id), addr)
	s.mu.Lock()
	if sc := s.cells[addr]; sc != nil && sc.hasWrite && !sc.flushed {
		sc.flushed = true
		sc.flushSite = access{strand: id, fn: fn, file: file, line: line}
	}
	s.mu.Unlock()
}

// Read records a persistent read and checks RAW races against unordered
// prior writes from other strands.
func (c *Checker) Read(id int64, addr uint64, persistent bool, fn, file string, line int) {
	if !persistent && !c.TrackAll {
		return
	}
	c.reads.Add(1)
	st := c.strand(id)
	now := c.gepoch.Load()
	s := c.seg(st, addr)
	s.mu.Lock()
	sc := s.cells[addr]
	if sc == nil {
		sc = &shadowCell{}
		s.cells[addr] = sc
	}
	var raced *access
	racedUnflushed := false
	if sc.hasWrite && !c.ordered(st, now, &sc.write) {
		cp := sc.write
		raced = &cp
		racedUnflushed = !sc.flushed
	}
	rec := access{strand: id, clock: st.own.Load(), gepoch: now, fn: fn, file: file, line: line}
	updated := false
	for i := range sc.reads {
		if sc.reads[i].strand == id {
			sc.reads[i] = rec
			updated = true
			break
		}
	}
	if !updated {
		sc.reads = append(sc.reads, rec)
	}
	s.mu.Unlock()
	if raced != nil {
		c.race("RAW", *raced, access{strand: id, fn: fn, file: file, line: line}, addr, racedUnflushed)
	}
}

// race emits a dependence warning.  unflushed marks a RAW whose racing
// write was never flushed before the read consumed it — reported under
// its own code (DMC-D03) so the fuzzer and reports can distinguish
// "durable side effect on non-persisted data" from an ordinary
// ordering race; when DMC-D03 is disabled by pass selection the race
// degrades to the plain RAW code rather than disappearing.
func (c *Checker) race(kind string, prev, cur access, addr uint64, unflushed bool) {
	code := report.CodeDynWAW
	detail := ""
	if kind == "RAW" {
		code = report.CodeDynRAW
		if unflushed && !c.Disabled[report.CodeDynUnflushedRAW] {
			code = report.CodeDynUnflushedRAW
			detail = "; the value read was never flushed, so durable effects built on it do not survive a crash"
		}
	}
	if c.Disabled[code] {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.races++
	c.rep.Add(report.Warning{
		Rule: report.RuleStrandDependence,
		Code: code,
		Message: fmt.Sprintf(
			"%s dependence between strands %d and %d on persistent address %#x (previous access at %s:%d): dependent persists must share a strand or be ordered by a barrier%s",
			kind, prev.strand, cur.strand, addr, prev.file, prev.line, detail),
		Func:    cur.fn,
		File:    cur.file,
		Line:    cur.line,
		Dynamic: true,
	})
}
