package dynamic

import (
	"sync"
	"testing"

	"deepmc/internal/dsa"
	"deepmc/internal/interp"
	"deepmc/internal/ir"
	"deepmc/internal/report"
)

func TestWAWBetweenStrands(t *testing.T) {
	c := NewChecker()
	c.StrandBegin(1)
	c.Write(1, 0x1000, true, "f", "f.c", 10)
	c.StrandEnd(1)
	c.StrandBegin(2)
	c.Write(2, 0x1000, true, "f", "f.c", 20)
	c.StrandEnd(2)
	rep := c.Report()
	if len(rep.Warnings) != 1 {
		t.Fatalf("warnings = %d, want 1:\n%s", len(rep.Warnings), rep)
	}
	w := rep.Warnings[0]
	if w.Rule != report.RuleStrandDependence || !w.Dynamic || w.Line != 20 {
		t.Errorf("warning = %+v", w)
	}
}

func TestRAWBetweenStrands(t *testing.T) {
	c := NewChecker()
	c.StrandBegin(1)
	c.Write(1, 0x2000, true, "f", "f.c", 10)
	c.StrandEnd(1)
	c.StrandBegin(2)
	c.Read(2, 0x2000, true, "f", "f.c", 30)
	c.StrandEnd(2)
	rep := c.Report()
	if len(rep.Warnings) != 1 {
		t.Fatalf("warnings = %d, want 1", len(rep.Warnings))
	}
}

func TestGlobalFenceOrdersStrands(t *testing.T) {
	c := NewChecker()
	c.StrandBegin(1)
	c.Write(1, 0x3000, true, "f", "f.c", 10)
	c.StrandEnd(1)
	c.GlobalFence()
	c.StrandBegin(2)
	c.Write(2, 0x3000, true, "f", "f.c", 20)
	c.StrandEnd(2)
	if rep := c.Report(); len(rep.Warnings) != 0 {
		t.Errorf("fence-ordered strands must not race:\n%s", rep)
	}
}

func TestDisjointAddressesNoRace(t *testing.T) {
	c := NewChecker()
	c.StrandBegin(1)
	c.Write(1, 0x100, true, "f", "f.c", 1)
	c.StrandEnd(1)
	c.StrandBegin(2)
	c.Write(2, 0x108, true, "f", "f.c", 2)
	c.StrandEnd(2)
	if rep := c.Report(); len(rep.Warnings) != 0 {
		t.Errorf("disjoint strands must not race:\n%s", rep)
	}
}

func TestSameStrandNoRace(t *testing.T) {
	c := NewChecker()
	c.StrandBegin(1)
	c.Write(1, 0x100, true, "f", "f.c", 1)
	c.Write(1, 0x100, true, "f", "f.c", 2)
	c.Read(1, 0x100, true, "f", "f.c", 3)
	c.StrandEnd(1)
	if rep := c.Report(); len(rep.Warnings) != 0 {
		t.Errorf("a strand cannot race with itself:\n%s", rep)
	}
}

func TestVolatileUntracked(t *testing.T) {
	c := NewChecker()
	c.StrandBegin(1)
	c.Write(1, 0x100, false, "f", "f.c", 1)
	c.StrandEnd(1)
	c.StrandBegin(2)
	c.Write(2, 0x100, false, "f", "f.c", 2)
	c.StrandEnd(2)
	if rep := c.Report(); len(rep.Warnings) != 0 {
		t.Errorf("volatile accesses must be ignored by default:\n%s", rep)
	}
	st := c.StatsSnapshot()
	if st.Writes != 0 {
		t.Errorf("stats recorded %d volatile writes", st.Writes)
	}
}

func TestTrackAllAblation(t *testing.T) {
	c := NewChecker()
	c.TrackAll = true
	c.StrandBegin(1)
	c.Write(1, 0x100, false, "f", "f.c", 1)
	c.StrandEnd(1)
	c.StrandBegin(2)
	c.Write(2, 0x100, false, "f", "f.c", 2)
	c.StrandEnd(2)
	if rep := c.Report(); len(rep.Warnings) != 1 {
		t.Errorf("TrackAll must detect the volatile race:\n%s", rep)
	}
}

func TestAcquireReleaseOrdering(t *testing.T) {
	c := NewChecker()
	lock := "mu"
	c.StrandBegin(1)
	c.Write(1, 0x500, true, "f", "f.c", 1)
	c.Release(1, lock)
	c.StrandEnd(1)
	c.StrandBegin(2)
	c.Acquire(2, lock)
	c.Write(2, 0x500, true, "f", "f.c", 2)
	c.StrandEnd(2)
	if rep := c.Report(); len(rep.Warnings) != 0 {
		t.Errorf("lock-ordered accesses must not race:\n%s", rep)
	}
}

func TestConcurrentUseIsSafe(t *testing.T) {
	c := NewChecker()
	var wg sync.WaitGroup
	for th := int64(1); th <= 8; th++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			c.StrandBegin(id)
			for i := 0; i < 1000; i++ {
				c.Write(id, uint64(id)<<20|uint64(i*8), true, "f", "f.c", int(id))
			}
			c.StrandEnd(id)
		}(th)
	}
	wg.Wait()
	st := c.StatsSnapshot()
	if st.Writes != 8000 {
		t.Errorf("writes = %d, want 8000", st.Writes)
	}
	if rep := c.Report(); len(rep.Warnings) != 0 {
		t.Errorf("disjoint concurrent writes raced:\n%s", rep)
	}
}

func TestShadowSegments(t *testing.T) {
	c := NewChecker()
	c.StrandBegin(1)
	// Two addresses in one 4K segment, one in another.
	c.Write(1, 0x0008, true, "f", "f.c", 1)
	c.Write(1, 0x0010, true, "f", "f.c", 2)
	c.Write(1, 0x5000, true, "f", "f.c", 3)
	c.StrandEnd(1)
	st := c.StatsSnapshot()
	if st.Segments != 2 {
		t.Errorf("segments = %d, want 2", st.Segments)
	}
	if st.Cells != 3 {
		t.Errorf("cells = %d, want 3", st.Cells)
	}
}

// --- end-to-end through the interpreter -------------------------------------

const strandProgSrc = `
module m

type acct struct {
	bal: int
	log: int
}

func racy(a: *acct) {
	file "racy.c"
	strandbegin 1        @10
	store %a.bal, 100    @11
	flush %a.bal         @12
	strandend 1          @13
	strandbegin 2        @14
	store %a.bal, 200    @15
	flush %a.bal         @16
	strandend 2          @17
	fence                @18
	ret
}

func ordered(a: *acct) {
	file "ordered.c"
	strandbegin 1        @20
	store %a.bal, 100    @21
	flush %a.bal         @22
	strandend 1          @23
	fence                @24
	strandbegin 2        @25
	store %a.bal, 200    @26
	flush %a.bal         @27
	strandend 2          @28
	fence                @29
	ret
}

func main_racy() {
	%a = palloc acct
	call racy(%a)
	ret
}

func main_ordered() {
	%a = palloc acct
	call ordered(%a)
	ret
}
`

func TestEndToEndStrandRace(t *testing.T) {
	m := ir.MustParse(strandProgSrc)
	rt := NewRuntime(true)
	ip := interp.New(m, rt)
	if _, err := ip.Run("main_racy"); err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := rt.Checker.Report()
	found := false
	for _, w := range rep.Warnings {
		if w.Rule == report.RuleStrandDependence && w.Line == 15 {
			found = true
		}
	}
	if !found {
		t.Errorf("WAW at racy.c:15 not detected:\n%s", rep)
	}
}

func TestEndToEndOrderedClean(t *testing.T) {
	m := ir.MustParse(strandProgSrc)
	rt := NewRuntime(true)
	ip := interp.New(m, rt)
	if _, err := ip.Run("main_ordered"); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep := rt.Checker.Report(); len(rep.Warnings) != 0 {
		t.Errorf("fence-separated strands flagged:\n%s", rep)
	}
}

func TestInstrumentPlanScopes(t *testing.T) {
	m := ir.MustParse(strandProgSrc)
	a := dsa.Analyze(m, dsa.DefaultOptions())
	annotated := Instrument(m, a, true)
	full := Instrument(m, a, false)
	if annotated.TotalMemOps == 0 || annotated.PersistentMemOps == 0 {
		t.Fatalf("plan counted nothing: %+v", annotated)
	}
	if len(annotated.Sites) > len(full.Sites) {
		t.Errorf("annotated scope (%d sites) cannot exceed full scope (%d)",
			len(annotated.Sites), len(full.Sites))
	}
	if annotated.AnnotatedMemOps != len(annotated.Sites) {
		t.Errorf("annotated sites %d != AnnotatedMemOps %d",
			len(annotated.Sites), annotated.AnnotatedMemOps)
	}
}
