package dynamic

import (
	"math/rand"
	"sync"
	"testing"
)

// replayPattern drives one deterministic access pattern — strands,
// fences, locks, reads, writes, flushes — against a checker.
func replayPattern(c *Checker, seed int64, events int) {
	rng := rand.New(rand.NewSource(seed))
	locks := []string{"lockA", "lockB", "lockC"}
	for i := 0; i < events; i++ {
		id := int64(1 + rng.Intn(4))
		addr := uint64(rng.Intn(1 << 16)) // spans many 4 KiB segments
		switch rng.Intn(10) {
		case 0:
			c.StrandBegin(id)
		case 1:
			c.StrandEnd(id)
		case 2:
			c.GlobalFence()
		case 3:
			c.Acquire(id, locks[rng.Intn(len(locks))])
		case 4:
			c.Release(id, locks[rng.Intn(len(locks))])
		case 5, 6:
			c.Write(id, addr, true, "fn", "file.go", i)
		case 7:
			c.Flush(id, addr, true, "fn", "file.go", i)
		default:
			c.Read(id, addr, true, "fn", "file.go", i)
		}
	}
}

// The striped directory plus per-strand segment cache must be
// behaviourally invisible: the same serial access pattern through the
// single-stripe (pre-shard) layout and the default sharded layout must
// render identical reports and identical footprint counters.
func TestStripedCheckerMatchesSingleStripe(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		base := NewCheckerStripes(1)
		sharded := NewChecker()
		replayPattern(base, seed, 4000)
		replayPattern(sharded, seed, 4000)
		if a, b := base.Report().String(), sharded.Report().String(); a != b {
			t.Fatalf("seed %d: reports diverge:\n--- 1 stripe ---\n%s\n--- sharded ---\n%s", seed, a, b)
		}
		sa, sb := base.StatsSnapshot(), sharded.StatsSnapshot()
		if sa != sb {
			t.Fatalf("seed %d: stats diverge: %+v vs %+v", seed, sa, sb)
		}
	}
}

// Concurrency smoke for the sharded hot path under -race: goroutines
// hammering overlapping segments through all entry points.
func TestStripedCheckerConcurrentAccess(t *testing.T) {
	c := NewChecker()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(id))
			c.StrandBegin(id)
			for i := 0; i < 3000; i++ {
				addr := uint64(rng.Intn(1 << 14))
				switch i % 5 {
				case 0:
					c.Write(id, addr, true, "fn", "file.go", i)
				case 1:
					c.Flush(id, addr, true, "fn", "file.go", i)
				case 2:
					c.GlobalFence()
				case 3:
					c.Acquire(id, "L")
					c.Release(id, "L")
				default:
					c.Read(id, addr, true, "fn", "file.go", i)
				}
			}
			c.StrandEnd(id)
		}(int64(g + 1))
	}
	wg.Wait()
	st := c.StatsSnapshot()
	if st.Writes == 0 || st.Reads == 0 || st.Flushes == 0 {
		t.Fatalf("counters did not move: %+v", st)
	}
	_ = c.Report().String() // must not race with anything above
}

func TestNewCheckerStripesRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {65, 128},
	} {
		c := NewCheckerStripes(tc.in)
		if got := len(c.stripes); got != tc.want {
			t.Errorf("NewCheckerStripes(%d): %d stripes, want %d", tc.in, got, tc.want)
		}
		if wantCache := tc.want > 1; c.segCache != wantCache {
			t.Errorf("NewCheckerStripes(%d): segCache=%v, want %v", tc.in, c.segCache, wantCache)
		}
	}
}
