package nvm

import (
	"testing"

	"deepmc/internal/faultinj"
)

func faultedPool(classes []faultinj.Class, seed int64) *Pool {
	cfg := DefaultConfig()
	cfg.Size = 1 << 16
	cfg.Faults = &faultinj.Config{Classes: classes, Rate: 1, Seed: seed}
	return NewPool(cfg)
}

// TestTornWritePartialDurability: a 32-byte store under torn-write
// injection persists some but not all of its granules immediately — a
// crash right after the store sees a mixed image, while the flushed and
// fenced path still yields the full value.
func TestTornWritePartialDurability(t *testing.T) {
	p := faultedPool([]faultinj.Class{faultinj.TornWrite}, 1)
	a, err := p.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i + 1)
	}
	if err := p.Store(a, data); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Injections == 0 {
		t.Fatal("rate-1 torn write never fired on a 32-byte store")
	}
	p.Crash()
	got, err := p.Load(a, 32)
	if err != nil {
		t.Fatal(err)
	}
	durable, zero := 0, 0
	for g := 0; g < 4; g++ {
		match := true
		for i := 0; i < 8; i++ {
			if got[g*8+i] != data[g*8+i] {
				match = false
			}
		}
		if match {
			durable++
		} else {
			zero++
		}
	}
	if durable == 0 || zero == 0 {
		t.Fatalf("torn store not partial: %d granules durable, %d lost", durable, zero)
	}
}

// TestTornWriteNeverTearsNarrowStores: 8-byte stores are single-granule
// and must be immune, keeping the corpus invariants' anchors atomic.
func TestTornWriteNeverTearsNarrowStores(t *testing.T) {
	p := faultedPool([]faultinj.Class{faultinj.TornWrite}, 1)
	a, _ := p.Alloc(8)
	for i := 0; i < 20; i++ {
		if err := p.Store64(a, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := p.Stats().Injections; n != 0 {
		t.Fatalf("narrow stores tore %d times:\n%s", n, p.FaultLog())
	}
}

// TestDroppedFlushRetriedAtFence: a dropped clwb leaves the line
// un-staged (a crash loses it), but the next fence retries the flush
// and drains it — the post-fence durability contract is intact.
func TestDroppedFlushRetriedAtFence(t *testing.T) {
	p := faultedPool([]faultinj.Class{faultinj.DroppedFlush}, 2)
	a, _ := p.Alloc(8)
	p.Store64(a, 77)
	if err := p.Flush(a, 8); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Injections == 0 {
		t.Fatal("rate-1 dropped flush never fired")
	}
	p.Fence()
	p.Crash()
	v, err := p.Load64(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 77 {
		t.Fatalf("flushed+fenced store lost under dropped-flush injection: %d", v)
	}
}

// TestDroppedFlushLostWithoutFence: before any fence, the dropped line
// really is more fragile than a staged one — a crash loses it even
// though the program issued clwb.  (Legal: clwb alone guarantees
// nothing until sfence.)
func TestDroppedFlushLostWithoutFence(t *testing.T) {
	p := faultedPool([]faultinj.Class{faultinj.DroppedFlush}, 2)
	a, _ := p.Alloc(8)
	p.Store64(a, 77)
	p.Flush(a, 8)
	p.Crash()
	if v, _ := p.Load64(a); v != 0 {
		t.Fatalf("dropped (unfenced) flush survived crash: %d", v)
	}
}

// TestReorderedAndDelayedKeepContract: with every class on, a flushed
// and fenced multi-line write is still fully durable afterwards —
// injection scrambles drain order and adds latency but never violates
// sfence.
func TestReorderedAndDelayedKeepContract(t *testing.T) {
	p := faultedPool(faultinj.AllClasses(), 3)
	const lines = 4
	addrs := make([]int, lines)
	for i := range addrs {
		a, err := p.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
		p.Store64(a, uint64(100+i))
		p.Flush(a, 8)
	}
	base := p.Stats().SimulatedNs
	p.Fence()
	if p.Stats().SimulatedNs <= base {
		t.Fatal("fence charged no simulated time")
	}
	p.Crash()
	for i, a := range addrs {
		v, err := p.DurableLoad64(a)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(100+i) {
			t.Fatalf("line %d lost under reordered/delayed injection: %d", i, v)
		}
	}
	if p.Stats().Injections == 0 {
		t.Fatal("no injections across a multi-line fence at rate 1")
	}
}

// TestFaultLogDeterminism: identical operation sequences against
// identically seeded pools produce byte-identical fault logs; a
// different seed diverges.
func TestFaultLogDeterminism(t *testing.T) {
	drive := func(seed int64) string {
		p := faultedPool(faultinj.AllClasses(), seed)
		a, _ := p.Alloc(64)
		b, _ := p.Alloc(64)
		buf := make([]byte, 32)
		for i := 0; i < 10; i++ {
			buf[0] = byte(i)
			p.Store(a, buf)
			p.Store64(b, uint64(i))
			p.Flush(a, 32)
			p.Flush(b, 8)
			p.Fence()
		}
		return p.FaultLog()
	}
	l1, l2 := drive(5), drive(5)
	if l1 != l2 {
		t.Fatalf("same seed, different logs:\n%s\nvs\n%s", l1, l2)
	}
	if l1 == "" {
		t.Fatal("rate-1 run injected nothing")
	}
	if drive(6) == l1 {
		t.Fatal("different seeds produced identical logs")
	}
}

// TestNoFaultsNoOverheadPath: a pool without a fault config reports an
// empty log and zero injections — the hot path is untouched.
func TestNoFaultsNoOverheadPath(t *testing.T) {
	p := NewPool(DefaultConfig())
	a, _ := p.Alloc(64)
	p.Store64(a, 1)
	p.Flush(a, 8)
	p.Fence()
	if p.FaultLog() != "" || p.Stats().Injections != 0 {
		t.Fatal("fault machinery active without a config")
	}
}
