package nvm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestPool() *Pool {
	cfg := DefaultConfig()
	cfg.Size = 1 << 16
	return NewPool(cfg)
}

func TestStoreLoadRoundTrip(t *testing.T) {
	p := newTestPool()
	a := mustAlloc(p, 64)
	if err := p.Store64(a, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := p.Load64(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeef {
		t.Errorf("load = %#x", v)
	}
}

func TestUnflushedStoreLostOnCrash(t *testing.T) {
	p := newTestPool()
	a := mustAlloc(p, 8)
	p.Store64(a, 42)
	p.Crash()
	v, _ := p.Load64(a)
	if v != 0 {
		t.Errorf("unflushed store survived crash: %d", v)
	}
}

func TestFlushWithoutFenceLostOnCrash(t *testing.T) {
	p := newTestPool()
	a := mustAlloc(p, 8)
	p.Store64(a, 42)
	p.Flush(a, 8)
	p.Crash()
	v, _ := p.Load64(a)
	if v != 0 {
		t.Errorf("clwb without sfence survived crash: %d", v)
	}
}

func TestFlushedFencedStoreSurvivesCrash(t *testing.T) {
	p := newTestPool()
	a := mustAlloc(p, 8)
	p.Store64(a, 42)
	p.Flush(a, 8)
	p.Fence()
	p.Crash()
	v, _ := p.Load64(a)
	if v != 42 {
		t.Errorf("persisted store lost: %d", v)
	}
}

func TestFenceOnlyCoversStagedLines(t *testing.T) {
	p := newTestPool()
	a := mustAlloc(p, 64)
	b := mustAlloc(p, 64)
	p.Store64(a, 1)
	p.Store64(b, 2)
	p.Flush(a, 8)
	p.Fence()
	p.Crash()
	va, _ := p.Load64(a)
	vb, _ := p.Load64(b)
	if va != 1 {
		t.Errorf("flushed+fenced line lost: %d", va)
	}
	if vb != 0 {
		t.Errorf("unflushed line survived: %d", vb)
	}
}

func TestAllocBoundsAndAlignment(t *testing.T) {
	p := NewPool(Config{Size: 256})
	a1 := mustAlloc(p, 10)
	a2 := mustAlloc(p, 10)
	if a1%CachelineSize != 0 || a2%CachelineSize != 0 {
		t.Errorf("allocations not aligned: %d %d", a1, a2)
	}
	if a2 <= a1 {
		t.Errorf("allocations overlap: %d %d", a1, a2)
	}
	if _, err := p.Alloc(1 << 20); err == nil {
		t.Error("oversized alloc must fail")
	}
	if err := p.Store(250, make([]byte, 20)); err == nil {
		t.Error("out-of-bounds store must fail")
	}
}

func TestStats(t *testing.T) {
	p := newTestPool()
	a := mustAlloc(p, 128)
	p.Store64(a, 1)
	p.Store64(a+64, 2)
	p.Flush(a, 128) // two lines
	p.Fence()
	st := p.Stats()
	if st.Stores != 2 || st.Flushes != 1 || st.LinesFlushed != 2 || st.Fences != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesWritten != 2*CachelineSize {
		t.Errorf("bytes written = %d", st.BytesWritten)
	}
	if st.SimulatedNs == 0 {
		t.Error("latency model not accounted")
	}
}

func TestEvictionPersistsSpontaneously(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Size = 1 << 16
	cfg.EvictEvery = 1
	cfg.Seed = 7
	p := NewPool(cfg)
	a := mustAlloc(p, 8)
	p.Store64(a, 99) // with EvictEvery=1 the single dirty line evicts
	p.Crash()
	v, _ := p.Load64(a)
	if v != 99 {
		t.Errorf("eviction should have persisted the line: %d", v)
	}
	if p.Stats().Evictions == 0 {
		t.Error("no eviction recorded")
	}
}

func TestPersistAll(t *testing.T) {
	p := newTestPool()
	a := mustAlloc(p, 8)
	p.Store64(a, 5)
	p.PersistAll()
	p.Crash()
	if v, _ := p.Load64(a); v != 5 {
		t.Errorf("PersistAll lost data: %d", v)
	}
}

// Property: for any op sequence, (1) a crash never reveals data that was
// never stored, and (2) every store whose line was flushed and fenced
// afterwards survives the crash.
func TestCrashConsistencyProperty(t *testing.T) {
	const slotsPerLine = CachelineSize / 8
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.Size = 1 << 12
		p := NewPool(cfg)
		const slots = 32
		base := mustAlloc(p, slots*8)
		// The reference model works at cacheline granularity: flushing
		// one slot stages its whole line, and a staged line writes back
		// its *current* contents at the fence.
		persisted := make(map[int]uint64) // slot -> durable value
		written := make(map[int]uint64)   // slot -> last stored value
		staged := make(map[int]bool)      // line -> staged for write-back
		for op := 0; op < 200; op++ {
			switch r.Intn(4) {
			case 0, 1:
				i := r.Intn(slots)
				v := r.Uint64()
				p.Store64(base+i*8, v)
				written[i] = v
			case 2:
				i := r.Intn(slots)
				p.Flush(base+i*8, 8)
				staged[i/slotsPerLine] = true
			case 3:
				p.Fence()
				for l := range staged {
					for j := l * slotsPerLine; j < (l+1)*slotsPerLine && j < slots; j++ {
						if v, ok := written[j]; ok {
							persisted[j] = v
						}
					}
				}
				staged = map[int]bool{}
			}
		}
		p.Crash()
		for i, want := range persisted {
			got, _ := p.Load64(base + i*8)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCrashIdempotent(t *testing.T) {
	p := newTestPool()
	a := mustAlloc(p, 16)
	p.Store(a, []byte("hello wo"))
	p.Flush(a, 8)
	p.Fence()
	p.Crash()
	p.Crash()
	b, _ := p.Load(a, 8)
	if !bytes.Equal(b, []byte("hello wo")) {
		t.Errorf("double crash corrupted data: %q", b)
	}
}

// mustAlloc is a test helper: allocation failure on these fixed-size
// test pools is a test bug.
func mustAlloc(p *Pool, size int) int {
	a, err := p.Alloc(size)
	if err != nil {
		panic(err)
	}
	return a
}
