// Package nvm simulates byte-addressable non-volatile memory behind a
// volatile cache hierarchy — the substrate the paper's evaluation machine
// provides in hardware (§2.1).
//
// The model captures exactly the semantics the persistency bugs depend on:
//
//   - Stores land in volatile cachelines; they are NOT durable.
//   - Flush (clwb) stages a cacheline for write-back.
//   - Fence (sfence) makes all staged lines durable, in order.
//   - A Crash discards everything not yet durable; Recover exposes the
//     durable image.
//   - Optional seeded random eviction spontaneously persists dirty lines,
//     reproducing the "unpredictable cache evictions" that make unflushed
//     writes intermittent in real hardware.
//
// The pool also keeps the accounting the performance experiments need:
// flush/fence counts, write-back traffic, and a simulated time model
// (flushes cost multiples of loads, per Izraelevitz et al. [21] as cited
// in the paper's §3.3).
package nvm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"deepmc/internal/faultinj"
)

// CachelineSize is the write-back granularity in bytes.
const CachelineSize = 64

// Config parameterizes a pool.
type Config struct {
	// Size is the pool capacity in bytes.
	Size int
	// EvictEvery spontaneously evicts one random dirty line every N
	// stores (0 disables eviction).
	EvictEvery int
	// Seed drives the eviction RNG (deterministic tests).
	Seed int64
	// Latency model, in simulated nanoseconds.  Defaults follow the
	// 2–4x flush-vs-store asymmetry the paper cites.
	StoreNs, LoadNs, FlushNs, FenceNs int64
	// Faults enables deterministic fault injection (package faultinj):
	// torn writes persist part of a multi-granule store early, dropped
	// flushes are retried at the next fence, reordered persists drain
	// staged lines in a scrambled (logged) order, and delayed drains add
	// fence latency.  All classes stay within clwb/sfence semantics.
	// Replay determinism holds for single-threaded clients (the decision
	// stream is a pure function of the operation order).
	Faults *faultinj.Config
}

// DefaultConfig returns a 16 MiB pool with the default latency model and
// no random eviction.
func DefaultConfig() Config {
	return Config{
		Size:    16 << 20,
		StoreNs: 10,
		LoadNs:  10,
		FlushNs: 30,
		FenceNs: 20,
	}
}

// Stats is the pool's operation accounting.
type Stats struct {
	Stores        uint64
	Loads         uint64
	Flushes       uint64 // flush calls
	LinesFlushed  uint64 // cachelines staged
	Fences        uint64
	BytesWritten  uint64 // write-back traffic to the medium
	Evictions     uint64
	Injections    uint64 // faults injected (Config.Faults)
	SimulatedNs   int64
	AllocatedByte uint64
}

// Pool is one simulated NVM device.
type Pool struct {
	mu  sync.Mutex
	cfg Config

	current []byte       // volatile view (cache + medium merged)
	durable []byte       // what survives a crash
	dirty   map[int]bool // line index -> modified since last write-back
	staged  map[int]bool // line index -> flushed, awaiting fence

	next       int // bump allocator cursor
	rng        *rand.Rand
	stats      Stats
	storeCount int

	sched   *faultinj.Schedule
	dropped map[int]bool // line index -> clwb dropped, retried at next fence
}

// NewPool creates a pool.
func NewPool(cfg Config) *Pool {
	if cfg.Size <= 0 {
		cfg.Size = DefaultConfig().Size
	}
	d := DefaultConfig()
	if cfg.StoreNs == 0 {
		cfg.StoreNs = d.StoreNs
	}
	if cfg.LoadNs == 0 {
		cfg.LoadNs = d.LoadNs
	}
	if cfg.FlushNs == 0 {
		cfg.FlushNs = d.FlushNs
	}
	if cfg.FenceNs == 0 {
		cfg.FenceNs = d.FenceNs
	}
	p := &Pool{
		cfg:     cfg,
		current: make([]byte, cfg.Size),
		durable: make([]byte, cfg.Size),
		dirty:   make(map[int]bool),
		staged:  make(map[int]bool),
		dropped: make(map[int]bool),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Faults != nil {
		p.sched = faultinj.New(*cfg.Faults)
	}
	return p
}

// FaultLog returns the byte-replayable injection log (empty without
// Config.Faults).  Two pools driven by the same single-threaded
// operation sequence produce byte-identical logs.
func (p *Pool) FaultLog() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sched == nil {
		return ""
	}
	return p.sched.Log()
}

// Size returns the pool capacity.
func (p *Pool) Size() int { return p.cfg.Size }

// Stats returns a snapshot of the accounting counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the counters (between benchmark phases).
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{AllocatedByte: p.stats.AllocatedByte}
}

// Alloc reserves size bytes, cacheline-aligned, and returns the offset.
func (p *Pool) Alloc(size int) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	aligned := (p.next + CachelineSize - 1) &^ (CachelineSize - 1)
	if aligned+size > p.cfg.Size {
		return 0, fmt.Errorf("nvm: out of space (want %d at %d of %d)", size, aligned, p.cfg.Size)
	}
	p.next = aligned + size
	p.stats.AllocatedByte += uint64(size)
	return aligned, nil
}

func (p *Pool) check(addr, size int) error {
	if addr < 0 || size < 0 || addr+size > p.cfg.Size {
		return fmt.Errorf("nvm: access [%d,%d) out of pool bounds %d", addr, addr+size, p.cfg.Size)
	}
	return nil
}

// Store writes bytes into the volatile view and marks the lines dirty.
func (p *Pool) Store(addr int, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(addr, len(data)); err != nil {
		return err
	}
	copy(p.current[addr:], data)
	for l := addr / CachelineSize; l <= (addr+len(data)-1)/CachelineSize; l++ {
		p.dirty[l] = true
	}
	p.stats.Stores++
	p.stats.SimulatedNs += p.cfg.StoreNs
	p.tearWrite(addr, len(data))
	p.maybeEvict()
	return nil
}

// tearWrite injects a torn write: a nonempty proper subset of the
// store's 8-byte granules persists immediately (early partial eviction
// of the line — legal for dirty data at any time).  The lines stay
// dirty: the untorn granules are still volatile.  Caller holds mu.
func (p *Pool) tearWrite(addr, size int) {
	const granule = 8
	if p.sched == nil || size < 2*granule || !p.sched.Fire(faultinj.TornWrite) {
		return
	}
	grans := (size + granule - 1) / granule
	sel := p.sched.Subset(grans)
	for _, g := range sel {
		start := addr + g*granule
		end := start + granule
		if end > p.cfg.Size {
			end = p.cfg.Size
		}
		copy(p.durable[start:end], p.current[start:end])
		p.stats.BytesWritten += uint64(end - start)
	}
	p.stats.Injections++
	p.sched.Record(faultinj.TornWrite, fmt.Sprintf("pool+%d", addr),
		fmt.Sprintf("store size=%d persisted granules=%v", size, sel))
}

// Store64 writes one little-endian 64-bit word.
func (p *Pool) Store64(addr int, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return p.Store(addr, b[:])
}

// Load reads size bytes from the volatile view.
func (p *Pool) Load(addr, size int) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(addr, size); err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, p.current[addr:addr+size])
	p.stats.Loads++
	p.stats.SimulatedNs += p.cfg.LoadNs
	return out, nil
}

// Load64 reads one little-endian 64-bit word.
func (p *Pool) Load64(addr int) (uint64, error) {
	b, err := p.Load(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// Flush stages the cachelines covering [addr, addr+size) for write-back
// (clwb semantics: durability only after the next Fence).
func (p *Pool) Flush(addr, size int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(addr, size); err != nil {
		return err
	}
	if size == 0 {
		size = 1
	}
	p.stats.Flushes++
	if p.sched != nil && p.sched.Fire(faultinj.DroppedFlush) {
		// The clwb is transiently dropped; Fence retries it, so the
		// sfence durability guarantee is unchanged — but until then the
		// lines stay dirty instead of staged (wider crash surface).
		first := addr / CachelineSize
		last := (addr + size - 1) / CachelineSize
		for l := first; l <= last; l++ {
			p.dropped[l] = true
		}
		p.stats.Injections++
		p.stats.SimulatedNs += p.cfg.FlushNs
		p.sched.Record(faultinj.DroppedFlush, fmt.Sprintf("pool+%d", addr),
			fmt.Sprintf("clwb lines [%d,%d] dropped, retried at next fence", first, last))
		return nil
	}
	for l := addr / CachelineSize; l <= (addr+size-1)/CachelineSize; l++ {
		if p.dirty[l] || p.staged[l] {
			p.staged[l] = true
			p.stats.LinesFlushed++
		} else {
			// Clean-line flush still costs a write-back on real hardware
			// (clwb of a clean line is cheap but not free); account it.
			p.stats.LinesFlushed++
			p.staged[l] = true
		}
		p.stats.SimulatedNs += p.cfg.FlushNs
	}
	return nil
}

// Fence makes all staged lines durable (sfence + drain semantics).
// Dropped-flush lines are retried here (hardware re-issues the clwb at
// the drain), so the fence guarantee holds under fault injection.
func (p *Pool) Fence() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for l := range p.dropped {
		if p.dirty[l] {
			p.staged[l] = true
			p.stats.LinesFlushed++
			p.stats.SimulatedNs += p.cfg.FlushNs
		}
	}
	p.dropped = make(map[int]bool)
	lines := make([]int, 0, len(p.staged))
	for l := range p.staged {
		lines = append(lines, l)
	}
	sort.Ints(lines)
	if p.sched != nil && len(lines) > 1 && p.sched.Fire(faultinj.ReorderedPersist) {
		// Drain in a scrambled order.  The post-fence durable state is
		// order-independent; the logged order is what a mid-drain crash
		// would expose, and the crash simulator explores those states.
		perm := p.sched.Perm(len(lines))
		reordered := make([]int, len(lines))
		for i, j := range perm {
			reordered[i] = lines[j]
		}
		lines = reordered
		p.stats.Injections++
		p.sched.Record(faultinj.ReorderedPersist, "pool fence",
			fmt.Sprintf("drain order %v", lines))
	}
	for _, l := range lines {
		p.writeBack(l)
	}
	p.staged = make(map[int]bool)
	p.stats.Fences++
	p.stats.SimulatedNs += p.cfg.FenceNs
	if p.sched != nil && len(lines) > 0 && p.sched.Fire(faultinj.DelayedDrain) {
		// The drain lags: charge extra fence latency.
		lag := int64(1+p.sched.Intn(4)) * p.cfg.FenceNs
		p.stats.SimulatedNs += lag
		p.stats.Injections++
		p.sched.Record(faultinj.DelayedDrain, "pool fence",
			fmt.Sprintf("drain of %d lines lagged %dns", len(lines), lag))
	}
}

// writeBack copies one line into the durable image.  Caller holds mu.
func (p *Pool) writeBack(line int) {
	start := line * CachelineSize
	end := start + CachelineSize
	if end > p.cfg.Size {
		end = p.cfg.Size
	}
	copy(p.durable[start:end], p.current[start:end])
	delete(p.dirty, line)
	p.stats.BytesWritten += uint64(end - start)
}

// maybeEvict spontaneously persists a random dirty line.  Caller holds mu.
func (p *Pool) maybeEvict() {
	if p.cfg.EvictEvery <= 0 {
		return
	}
	p.storeCount++
	if p.storeCount%p.cfg.EvictEvery != 0 || len(p.dirty) == 0 {
		return
	}
	// Pick a pseudo-random dirty line deterministically.
	k := p.rng.Intn(len(p.dirty))
	for l := range p.dirty {
		if k == 0 {
			p.writeBack(l)
			p.stats.Evictions++
			return
		}
		k--
	}
}

// Crash discards all volatile state: dirty lines vanish; staged-but-not-
// fenced lines vanish too (the strictest reading of clwb without sfence).
func (p *Pool) Crash() {
	p.mu.Lock()
	defer p.mu.Unlock()
	copy(p.current, p.durable)
	p.dirty = make(map[int]bool)
	p.staged = make(map[int]bool)
	p.dropped = make(map[int]bool)
}

// DurableLoad reads from the durable image without simulating a crash
// (test inspection helper).
func (p *Pool) DurableLoad(addr, size int) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(addr, size); err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, p.durable[addr:addr+size])
	return out, nil
}

// DurableLoad64 reads one durable 64-bit word.
func (p *Pool) DurableLoad64(addr int) (uint64, error) {
	b, err := p.DurableLoad(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// PersistAll flushes and fences every dirty line (pool shutdown helper).
func (p *Pool) PersistAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for l := range p.dirty {
		p.writeBack(l)
	}
	p.staged = make(map[int]bool)
	p.dropped = make(map[int]bool)
}
