// Package nvm simulates byte-addressable non-volatile memory behind a
// volatile cache hierarchy — the substrate the paper's evaluation machine
// provides in hardware (§2.1).
//
// The model captures exactly the semantics the persistency bugs depend
// on, parameterized by a hardware persistency contract (package
// pmcontract).  Under the default x86 contract:
//
//   - Stores land in volatile cachelines; they are NOT durable.
//   - Flush (clwb) stages a cacheline for write-back.
//   - Fence (sfence) makes all staged lines durable, in order.
//   - A Crash discards everything not yet durable; Recover exposes the
//     durable image.
//   - Optional seeded random eviction spontaneously persists dirty lines,
//     reproducing the "unpredictable cache evictions" that make unflushed
//     writes intermittent in real hardware.
//
// Under the CXL contract (Config.Contract) the pool adds a device-side
// persistence domain: stores inside it are durable at store time (no
// flush needed — in-domain flushes are accounted no-ops), the fence is a
// global persist barrier that additionally commits the domain's
// device-side buffer, and a device failure (CrashDevice) rolls the
// domain back to its last barrier-committed image while host/power
// crashes (Crash) preserve it.  A CXL pool with an empty domain is
// byte-identical to an x86 pool in crash images and fault logs.
//
// The pool also keeps the accounting the performance experiments need:
// flush/fence counts, write-back traffic, and a simulated time model
// (flushes cost multiples of loads, per Izraelevitz et al. [21] as cited
// in the paper's §3.3).
package nvm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"deepmc/internal/faultinj"
	"deepmc/internal/pmcontract"
)

// CachelineSize is the write-back granularity in bytes.
const CachelineSize = 64

// Config parameterizes a pool.
type Config struct {
	// Size is the pool capacity in bytes.
	Size int
	// EvictEvery spontaneously evicts one random dirty line every N
	// stores (0 disables eviction).
	EvictEvery int
	// Seed drives the eviction RNG (deterministic tests).
	Seed int64
	// Latency model, in simulated nanoseconds.  Defaults follow the
	// 2–4x flush-vs-store asymmetry the paper cites.
	StoreNs, LoadNs, FlushNs, FenceNs int64
	// Faults enables deterministic fault injection (package faultinj):
	// torn writes persist part of a multi-granule store early, dropped
	// flushes are retried at the next fence, reordered persists drain
	// staged lines in a scrambled (logged) order, and delayed drains add
	// fence latency.  All classes stay within the pool's contract; under
	// a CXL persistence domain, torn writes and dropped flushes cannot
	// fire on in-domain ranges (stores there are durable whole at store
	// time and have no clwb to drop).
	//
	// Replay determinism: with the default shared decision stream it
	// holds for single-threaded clients only (the stream is a pure
	// function of the pool's operation order, which concurrent clients
	// perturb).  Set Faults.PerOpStream for keyed per-class streams —
	// the decision for the k-th eligible event of each class depends
	// only on (Seed, class, k) — so concurrent clients replay
	// deterministically as long as each client's own event sequence is
	// stable; see the faultinj.Config.PerOpStream doc for the residual
	// same-class interleaving caveat.
	Faults *faultinj.Config
	// Contract is the hardware persistency contract the pool simulates.
	// The zero value is x86 (clwb/sfence), preserving every
	// pre-contract caller.  pmcontract.CXLContract adds the global
	// persist barrier and the device persistence domain described in
	// the package doc.
	Contract pmcontract.Contract
}

// DefaultConfig returns a 16 MiB pool with the default latency model and
// no random eviction.
func DefaultConfig() Config {
	return Config{
		Size:    16 << 20,
		StoreNs: 10,
		LoadNs:  10,
		FlushNs: 30,
		FenceNs: 20,
	}
}

// Stats is the pool's operation accounting.
type Stats struct {
	Stores        uint64
	Loads         uint64
	Flushes       uint64 // flush calls
	LinesFlushed  uint64 // cachelines staged
	Fences        uint64
	BytesWritten  uint64 // write-back traffic to the medium
	Evictions     uint64
	Injections    uint64 // faults injected (Config.Faults)
	SimulatedNs   int64
	AllocatedByte uint64
	// CXL persistence-domain accounting (zero under x86).
	DomainStores  uint64 // stores durable at store time (in-domain)
	DomainFlushes uint64 // accounted no-op flushes of in-domain ranges
	DomainCommits uint64 // buffered domain lines committed by barriers
}

// Pool is one simulated NVM device.
type Pool struct {
	mu  sync.Mutex
	cfg Config

	current []byte       // volatile view (cache + medium merged)
	durable []byte       // what survives a crash
	dirty   map[int]bool // line index -> modified since last write-back
	staged  map[int]bool // line index -> flushed, awaiting fence

	next       int // bump allocator cursor
	rng        *rand.Rand
	stats      Stats
	storeCount int

	sched   *faultinj.Schedule
	dropped map[int]bool // line index -> clwb dropped, retried at next fence

	// CXL persistence-domain state (nil/empty under x86 or an empty
	// domain).  devCommitted is the image a device failure exposes:
	// durable minus domain writes buffered device-side since the last
	// global persist barrier.  domainPending marks lines with such
	// buffered writes.
	devCommitted  []byte
	domainPending map[int]bool
}

// NewPool creates a pool.
func NewPool(cfg Config) *Pool {
	if cfg.Size <= 0 {
		cfg.Size = DefaultConfig().Size
	}
	d := DefaultConfig()
	if cfg.StoreNs == 0 {
		cfg.StoreNs = d.StoreNs
	}
	if cfg.LoadNs == 0 {
		cfg.LoadNs = d.LoadNs
	}
	if cfg.FlushNs == 0 {
		cfg.FlushNs = d.FlushNs
	}
	if cfg.FenceNs == 0 {
		if cfg.Contract.ID == pmcontract.CXL {
			cfg.FenceNs = cxlFenceNs
		} else {
			cfg.FenceNs = d.FenceNs
		}
	}
	p := &Pool{
		cfg:     cfg,
		current: make([]byte, cfg.Size),
		durable: make([]byte, cfg.Size),
		dirty:   make(map[int]bool),
		staged:  make(map[int]bool),
		dropped: make(map[int]bool),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Contract.HasDomain() {
		p.devCommitted = make([]byte, cfg.Size)
		p.domainPending = make(map[int]bool)
	}
	if cfg.Faults != nil {
		p.sched = faultinj.New(*cfg.Faults)
	}
	return p
}

// cxlFenceNs is the default global-persist-barrier latency: the barrier
// round-trips to the CXL device to commit its buffered domain writes,
// so it costs more than a local sfence drain (the asymmetry the
// -pmodel bench measures).
const cxlFenceNs = 60

// CXLPool is a Pool running the CXL-era contract.  It is the same
// simulator parameterized differently, not a fork: every Pool method
// applies, plus CrashDevice (the failure domain x86 does not have).
type CXLPool = Pool

// NewCXLPool creates a pool under the CXL contract with the given
// device persistence domain.  An empty domain yields a pool whose crash
// images and fault logs are byte-identical to an x86 pool driven by the
// same operation sequence (only barrier latency differs).
func NewCXLPool(cfg Config, domain pmcontract.Domain) *CXLPool {
	cfg.Contract = pmcontract.CXLContract(domain)
	return NewPool(cfg)
}

// Contract returns the pool's hardware persistency contract.
func (p *Pool) Contract() pmcontract.Contract { return p.cfg.Contract }

// FaultLog returns the byte-replayable injection log (empty without
// Config.Faults).  Two pools driven by the same single-threaded
// operation sequence produce byte-identical logs.
func (p *Pool) FaultLog() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sched == nil {
		return ""
	}
	return p.sched.Log()
}

// Size returns the pool capacity.
func (p *Pool) Size() int { return p.cfg.Size }

// Stats returns a snapshot of the accounting counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the counters (between benchmark phases).
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{AllocatedByte: p.stats.AllocatedByte}
}

// Alloc reserves size bytes, cacheline-aligned, and returns the offset.
func (p *Pool) Alloc(size int) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	aligned := (p.next + CachelineSize - 1) &^ (CachelineSize - 1)
	if aligned+size > p.cfg.Size {
		return 0, fmt.Errorf("nvm: out of space (want %d at %d of %d)", size, aligned, p.cfg.Size)
	}
	p.next = aligned + size
	p.stats.AllocatedByte += uint64(size)
	return aligned, nil
}

func (p *Pool) check(addr, size int) error {
	if addr < 0 || size < 0 || addr+size > p.cfg.Size {
		return fmt.Errorf("nvm: access [%d,%d) out of pool bounds %d", addr, addr+size, p.cfg.Size)
	}
	return nil
}

// Store writes bytes into the volatile view and marks the lines dirty.
// Inside a CXL persistence domain the store is durable at store time
// instead: it lands in the durable image immediately (buffered
// device-side until the next global persist barrier commits it against
// device failure) and never passes through the dirty/staged machinery —
// so torn writes and evictions cannot touch it.
func (p *Pool) Store(addr int, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(addr, len(data)); err != nil {
		return err
	}
	copy(p.current[addr:], data)
	if p.cfg.Contract.AutoPersists(addr, len(data)) {
		copy(p.durable[addr:addr+len(data)], data)
		for l := addr / CachelineSize; l <= (addr+len(data)-1)/CachelineSize; l++ {
			p.domainPending[l] = true
		}
		p.stats.Stores++
		p.stats.DomainStores++
		p.stats.BytesWritten += uint64(len(data))
		p.stats.SimulatedNs += p.cfg.StoreNs
		return nil
	}
	for l := addr / CachelineSize; l <= (addr+len(data)-1)/CachelineSize; l++ {
		p.dirty[l] = true
	}
	p.stats.Stores++
	p.stats.SimulatedNs += p.cfg.StoreNs
	p.tearWrite(addr, len(data))
	p.maybeEvict()
	return nil
}

// tearWrite injects a torn write: a nonempty proper subset of the
// store's 8-byte granules persists immediately (early partial eviction
// of the line — legal for dirty data at any time).  The lines stay
// dirty: the untorn granules are still volatile.  Caller holds mu.
func (p *Pool) tearWrite(addr, size int) {
	const granule = 8
	if p.sched == nil || size < 2*granule || !p.sched.Fire(faultinj.TornWrite) {
		return
	}
	grans := (size + granule - 1) / granule
	sel := p.sched.Subset(grans)
	for _, g := range sel {
		start := addr + g*granule
		end := start + granule
		if end > p.cfg.Size {
			end = p.cfg.Size
		}
		copy(p.durable[start:end], p.current[start:end])
		p.mirrorCommitted(start, end)
		p.stats.BytesWritten += uint64(end - start)
	}
	p.stats.Injections++
	p.sched.Record(faultinj.TornWrite, fmt.Sprintf("pool+%d", addr),
		fmt.Sprintf("store size=%d persisted granules=%v", size, sel))
}

// Store64 writes one little-endian 64-bit word.
func (p *Pool) Store64(addr int, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return p.Store(addr, b[:])
}

// Load reads size bytes from the volatile view.
func (p *Pool) Load(addr, size int) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(addr, size); err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, p.current[addr:addr+size])
	p.stats.Loads++
	p.stats.SimulatedNs += p.cfg.LoadNs
	return out, nil
}

// Load64 reads one little-endian 64-bit word.
func (p *Pool) Load64(addr int) (uint64, error) {
	b, err := p.Load(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// Flush stages the cachelines covering [addr, addr+size) for write-back
// (clwb semantics: durability only after the next Fence).
func (p *Pool) Flush(addr, size int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(addr, size); err != nil {
		return err
	}
	if size == 0 {
		size = 1
	}
	if p.cfg.Contract.AutoPersists(addr, size) {
		// In-domain data was durable at store time: the clwb writes back
		// nothing (and there is no clwb for a dropped-flush fault to
		// drop).  Accounted as a cheap no-op — the waste DMC-X01 flags.
		p.stats.Flushes++
		p.stats.DomainFlushes++
		p.stats.SimulatedNs += p.cfg.LoadNs
		return nil
	}
	p.stats.Flushes++
	if p.sched != nil && p.sched.Fire(faultinj.DroppedFlush) {
		// The clwb is transiently dropped; Fence retries it, so the
		// sfence durability guarantee is unchanged — but until then the
		// lines stay dirty instead of staged (wider crash surface).
		first := addr / CachelineSize
		last := (addr + size - 1) / CachelineSize
		for l := first; l <= last; l++ {
			p.dropped[l] = true
		}
		p.stats.Injections++
		p.stats.SimulatedNs += p.cfg.FlushNs
		p.sched.Record(faultinj.DroppedFlush, fmt.Sprintf("pool+%d", addr),
			fmt.Sprintf("clwb lines [%d,%d] dropped, retried at next fence", first, last))
		return nil
	}
	for l := addr / CachelineSize; l <= (addr+size-1)/CachelineSize; l++ {
		if p.dirty[l] || p.staged[l] {
			p.staged[l] = true
			p.stats.LinesFlushed++
		} else {
			// Clean-line flush still costs a write-back on real hardware
			// (clwb of a clean line is cheap but not free); account it.
			p.stats.LinesFlushed++
			p.staged[l] = true
		}
		p.stats.SimulatedNs += p.cfg.FlushNs
	}
	return nil
}

// Fence makes all staged lines durable (sfence + drain semantics).
// Dropped-flush lines are retried here (hardware re-issues the clwb at
// the drain), so the fence guarantee holds under fault injection.
func (p *Pool) Fence() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for l := range p.dropped {
		if p.dirty[l] {
			p.staged[l] = true
			p.stats.LinesFlushed++
			p.stats.SimulatedNs += p.cfg.FlushNs
		}
	}
	p.dropped = make(map[int]bool)
	lines := make([]int, 0, len(p.staged))
	for l := range p.staged {
		lines = append(lines, l)
	}
	sort.Ints(lines)
	if p.sched != nil && len(lines) > 1 && p.sched.Fire(faultinj.ReorderedPersist) {
		// Drain in a scrambled order.  The post-fence durable state is
		// order-independent; the logged order is what a mid-drain crash
		// would expose, and the crash simulator explores those states.
		perm := p.sched.Perm(len(lines))
		reordered := make([]int, len(lines))
		for i, j := range perm {
			reordered[i] = lines[j]
		}
		lines = reordered
		p.stats.Injections++
		p.sched.Record(faultinj.ReorderedPersist, "pool fence",
			fmt.Sprintf("drain order %v", lines))
	}
	for _, l := range lines {
		p.writeBack(l)
	}
	p.staged = make(map[int]bool)
	// Under CXL the fence is a global persist barrier: it additionally
	// commits the device-side domain buffer, after which a device
	// failure can no longer discard those writes.
	if len(p.domainPending) > 0 {
		committed := make([]int, 0, len(p.domainPending))
		for l := range p.domainPending {
			committed = append(committed, l)
		}
		sort.Ints(committed)
		p.domainPending = make(map[int]bool)
		for _, l := range committed {
			start := l * CachelineSize
			end := start + CachelineSize
			if end > p.cfg.Size {
				end = p.cfg.Size
			}
			p.mirrorCommitted(start, end)
		}
		p.stats.DomainCommits += uint64(len(committed))
	}
	p.stats.Fences++
	p.stats.SimulatedNs += p.cfg.FenceNs
	if p.sched != nil && len(lines) > 0 && p.sched.Fire(faultinj.DelayedDrain) {
		// The drain lags: charge extra fence latency.  The log records
		// the lag in fence-latency multiples, not ns, so schedules stay
		// byte-comparable across contracts with different barrier costs.
		mult := int64(1 + p.sched.Intn(4))
		p.stats.SimulatedNs += mult * p.cfg.FenceNs
		p.stats.Injections++
		p.sched.Record(faultinj.DelayedDrain, "pool fence",
			fmt.Sprintf("drain of %d lines lagged %dx fence latency", len(lines), mult))
	}
}

// writeBack copies one line into the durable image.  Caller holds mu.
func (p *Pool) writeBack(line int) {
	start := line * CachelineSize
	end := start + CachelineSize
	if end > p.cfg.Size {
		end = p.cfg.Size
	}
	copy(p.durable[start:end], p.current[start:end])
	p.mirrorCommitted(start, end)
	delete(p.dirty, line)
	p.stats.BytesWritten += uint64(end - start)
}

// mirrorCommitted copies durable[start:end) into the device-committed
// image, skipping bytes of domain writes still buffered device-side
// (they commit at the next global persist barrier, not here).  No-op
// under x86 or an empty domain.  Caller holds mu.
func (p *Pool) mirrorCommitted(start, end int) {
	if p.devCommitted == nil {
		return
	}
	for l := start / CachelineSize; l <= (end-1)/CachelineSize; l++ {
		ls := l * CachelineSize
		le := ls + CachelineSize
		if ls < start {
			ls = start
		}
		if le > end {
			le = end
		}
		if p.domainPending[l] {
			// The line holds uncommitted domain bytes (it straddles the
			// domain boundary, or a barrier has not run yet): mirror only
			// the out-of-domain bytes.
			for b := ls; b < le; b++ {
				if !p.cfg.Contract.Domain.Contains(b, 1) {
					p.devCommitted[b] = p.durable[b]
				}
			}
		} else {
			copy(p.devCommitted[ls:le], p.durable[ls:le])
		}
	}
}

// maybeEvict spontaneously persists a random dirty line.  Caller holds mu.
func (p *Pool) maybeEvict() {
	if p.cfg.EvictEvery <= 0 {
		return
	}
	p.storeCount++
	if p.storeCount%p.cfg.EvictEvery != 0 || len(p.dirty) == 0 {
		return
	}
	// Pick a pseudo-random dirty line deterministically.
	k := p.rng.Intn(len(p.dirty))
	for l := range p.dirty {
		if k == 0 {
			p.writeBack(l)
			p.stats.Evictions++
			return
		}
		k--
	}
}

// Crash discards all volatile state: dirty lines vanish; staged-but-not-
// fenced lines vanish too (the strictest reading of clwb without sfence).
// Under CXL this is the host/power failure domain: the persistence
// domain survives (its energy reserve drains buffered writes), so the
// durable image — which in-domain stores entered at store time — is
// exposed unchanged.  Device-side buffer state is device state and also
// survives a host crash: writes still uncommitted by a global barrier
// remain exposed to a later CrashDevice.
func (p *Pool) Crash() {
	p.mu.Lock()
	defer p.mu.Unlock()
	copy(p.current, p.durable)
	p.dirty = make(map[int]bool)
	p.staged = make(map[int]bool)
	p.dropped = make(map[int]bool)
}

// CrashDevice simulates the CXL-only failure domain: the device fails,
// losing domain writes buffered since the last global persist barrier —
// the domain rolls back to its barrier-committed image.  Host volatile
// state is discarded too (recovery restarts the program).  Under x86 or
// an empty domain there is no device buffer, so CrashDevice degenerates
// to Crash.
func (p *Pool) CrashDevice() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.devCommitted != nil {
		copy(p.durable, p.devCommitted)
		p.domainPending = make(map[int]bool)
	}
	copy(p.current, p.durable)
	p.dirty = make(map[int]bool)
	p.staged = make(map[int]bool)
	p.dropped = make(map[int]bool)
}

// DurableLoad reads from the durable image without simulating a crash
// (test inspection helper).
func (p *Pool) DurableLoad(addr, size int) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(addr, size); err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, p.durable[addr:addr+size])
	return out, nil
}

// DurableLoad64 reads one durable 64-bit word.
func (p *Pool) DurableLoad64(addr int) (uint64, error) {
	b, err := p.DurableLoad(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// PersistAll flushes and fences every dirty line and commits the domain
// buffer (pool shutdown helper).
func (p *Pool) PersistAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for l := range p.dirty {
		p.writeBack(l)
	}
	p.staged = make(map[int]bool)
	p.dropped = make(map[int]bool)
	if len(p.domainPending) > 0 {
		p.domainPending = make(map[int]bool)
		if p.devCommitted != nil {
			copy(p.devCommitted, p.durable)
		}
	}
}
