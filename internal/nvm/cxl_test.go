package nvm

import (
	"bytes"
	"testing"

	"deepmc/internal/faultinj"
	"deepmc/internal/pmcontract"
)

// TestCXLDomainAutoPersist: an in-domain store survives a host/power
// crash with no flush or fence at all.
func TestCXLDomainAutoPersist(t *testing.T) {
	p := NewCXLPool(Config{Size: 1 << 12}, pmcontract.WholeDomain())
	if err := p.Store64(0, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	p.Crash()
	v, err := p.Load64(0)
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("in-domain store lost across host crash: %x, %v", v, err)
	}
	st := p.Stats()
	if st.DomainStores != 1 {
		t.Errorf("DomainStores = %d, want 1", st.DomainStores)
	}
}

// TestCXLDeviceFailureRollsBack: a device failure discards domain
// writes buffered since the last global persist barrier; a barrier
// commits them.
func TestCXLDeviceFailureRollsBack(t *testing.T) {
	p := NewCXLPool(Config{Size: 1 << 12}, pmcontract.WholeDomain())
	if err := p.Store64(0, 1); err != nil {
		t.Fatal(err)
	}
	p.Fence() // commits the buffered write
	if err := p.Store64(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.Store64(64, 3); err != nil {
		t.Fatal(err)
	}
	p.CrashDevice()
	v, _ := p.Load64(0)
	if v != 1 {
		t.Errorf("device failure did not roll back to the committed value: got %d, want 1", v)
	}
	w, _ := p.Load64(64)
	if w != 0 {
		t.Errorf("never-committed domain write survived device failure: got %d, want 0", w)
	}
	st := p.Stats()
	if st.DomainCommits == 0 {
		t.Errorf("barrier committed no domain lines: %+v", st)
	}
}

// TestCXLDomainFlushIsNoOp: flushing in-domain data stages nothing and
// is accounted as a domain flush.
func TestCXLDomainFlushIsNoOp(t *testing.T) {
	p := NewCXLPool(Config{Size: 1 << 12}, pmcontract.WholeDomain())
	if err := p.Store64(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(0, 8); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.DomainFlushes != 1 || st.LinesFlushed != 0 {
		t.Errorf("in-domain flush staged lines: %+v", st)
	}
}

// TestCXLPartialDomainStraddle: with a partial domain, a fenced
// out-of-domain write sharing a cacheline with an uncommitted domain
// write must survive a device failure while the domain write rolls
// back.
func TestCXLPartialDomainStraddle(t *testing.T) {
	// Domain covers the first 32 bytes of line 0 only.
	p := NewCXLPool(Config{Size: 1 << 12}, pmcontract.RangeDomain(0, 32))
	if err := p.Store64(0, 11); err != nil { // in-domain, buffered
		t.Fatal(err)
	}
	if err := p.Store64(32, 22); err != nil { // out-of-domain, same line
		t.Fatal(err)
	}
	if err := p.Flush(32, 8); err != nil {
		t.Fatal(err)
	}
	p.Fence()
	// The fence committed both; write a fresh uncommitted domain value.
	if err := p.Store64(8, 33); err != nil {
		t.Fatal(err)
	}
	p.CrashDevice()
	if v, _ := p.Load64(32); v != 22 {
		t.Errorf("fenced out-of-domain write lost on device failure: got %d, want 22", v)
	}
	if v, _ := p.Load64(0); v != 11 {
		t.Errorf("committed domain write lost on device failure: got %d, want 11", v)
	}
	if v, _ := p.Load64(8); v != 0 {
		t.Errorf("uncommitted domain write survived device failure: got %d, want 0", v)
	}
}

// TestCXLDomainFaultImmunity: with the whole heap in-domain, no fault
// class can fire — torn writes and dropped flushes are contractually
// impossible (stores are durable whole at store time, there is no clwb
// to drop), and reordered/delayed drains have no staged lines to act
// on.
func TestCXLDomainFaultImmunity(t *testing.T) {
	p := NewCXLPool(Config{
		Size:   1 << 12,
		Faults: &faultinj.Config{Classes: faultinj.AllClasses(), Rate: 1, Seed: 1},
	}, pmcontract.WholeDomain())
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i)
	}
	for round := 0; round < 8; round++ {
		if err := p.Store(128, buf); err != nil {
			t.Fatal(err)
		}
		if err := p.Flush(128, 64); err != nil {
			t.Fatal(err)
		}
		p.Fence()
	}
	if st := p.Stats(); st.Injections != 0 {
		t.Errorf("faults fired inside the persistence domain: %+v\nlog:\n%s", st, p.FaultLog())
	}
}

// driveOps runs one mixed operation sequence against a pool.
func driveOps(t *testing.T, p *Pool) {
	t.Helper()
	buf := make([]byte, 48)
	for i := range buf {
		buf[i] = byte(i * 3)
	}
	for round := 0; round < 6; round++ {
		if err := p.Store(int(64*round), buf); err != nil {
			t.Fatal(err)
		}
		if err := p.Store64(512+8*round, uint64(round)); err != nil {
			t.Fatal(err)
		}
		if round%2 == 0 {
			if err := p.Flush(int(64*round), 48); err != nil {
				t.Fatal(err)
			}
		}
		if round%3 == 0 {
			p.Fence()
		}
	}
	p.Crash()
}

// TestCXLEmptyDomainMatchesX86: an empty-domain CXL pool driven by the
// same operation sequence as an x86 pool produces a byte-identical
// crash image and fault log — the contract-equivalence property at the
// pool layer.
func TestCXLEmptyDomainMatchesX86(t *testing.T) {
	faults := &faultinj.Config{Classes: faultinj.AllClasses(), Rate: 0.5, Seed: 42}
	x86 := NewPool(Config{Size: 1 << 12, Faults: faults})
	cxl := NewCXLPool(Config{Size: 1 << 12, Faults: faults}, pmcontract.Domain{})
	driveOps(t, x86)
	driveOps(t, cxl)
	a, err := x86.DurableLoad(0, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cxl.DurableLoad(0, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("empty-domain CXL crash image diverges from x86")
	}
	if x86.FaultLog() != cxl.FaultLog() {
		t.Errorf("fault logs diverge:\nx86:\n%s\ncxl:\n%s", x86.FaultLog(), cxl.FaultLog())
	}
	if x86.FaultLog() == "" {
		t.Errorf("differential vacuous: no faults fired")
	}
}

// TestCXLCrashDeviceOnX86IsCrash: without a domain, CrashDevice is just
// Crash — there is no device buffer to lose.
func TestCXLCrashDeviceOnX86IsCrash(t *testing.T) {
	p := NewPool(Config{Size: 1 << 12})
	if err := p.Store64(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(0, 8); err != nil {
		t.Fatal(err)
	}
	p.Fence()
	if err := p.Store64(8, 6); err != nil {
		t.Fatal(err)
	}
	p.CrashDevice()
	if v, _ := p.Load64(0); v != 5 {
		t.Errorf("fenced write lost: %d", v)
	}
	if v, _ := p.Load64(8); v != 0 {
		t.Errorf("unflushed write survived: %d", v)
	}
}
