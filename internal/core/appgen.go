package core

import (
	"fmt"
	"math/rand"

	"deepmc/internal/ir"
)

// AppSpec sizes a synthetic application module for the Table 9
// compile-time experiment: the paper compiles Memcached (≈60 kLoC),
// Redis (≈120 kLoC) and NStore with and without DeepMC; we generate PIR
// modules whose function counts are proportional, then measure
// parse-only vs. parse+analysis wall time.
type AppSpec struct {
	Name string
	// Funcs is the number of generated functions.
	Funcs int
	// CallDepth chains helper calls (1 = leaves only).
	CallDepth int
	// Seed makes generation deterministic.
	Seed int64
}

// AppSpecs mirrors the relative code sizes of the Table 6 applications.
func AppSpecs() []AppSpec {
	return []AppSpec{
		{Name: "Memcached", Funcs: 220, CallDepth: 3, Seed: 1},
		{Name: "Redis", Funcs: 1100, CallDepth: 3, Seed: 2},
		{Name: "NStore", Funcs: 620, CallDepth: 3, Seed: 3},
	}
}

// GenerateApp builds a well-formed, mostly persistency-correct PIR
// module of the requested size.  The generated code uses the full
// operation vocabulary (allocations, field stores, flushes, fences,
// transactions, branches, helper calls) so the analysis pipeline does
// representative work.
func GenerateApp(spec AppSpec) *ir.Module {
	rng := rand.New(rand.NewSource(spec.Seed))
	m := ir.NewModule(spec.Name)
	// A handful of struct types shared by all functions.
	var types []*ir.Type
	for i := 0; i < 6; i++ {
		t := ir.StructType(fmt.Sprintf("rec%d", i),
			ir.Field{Name: "a", Type: ir.IntType},
			ir.Field{Name: "b", Type: ir.IntType},
			ir.Field{Name: "c", Type: ir.IntType},
			ir.Field{Name: "d", Type: ir.ArrayOf(4, ir.IntType)},
		)
		m.AddType(t)
		types = append(types, t)
	}
	b := ir.NewBuilder(m)
	if spec.CallDepth < 1 {
		spec.CallDepth = 1
	}
	// Generate functions in layers; layer k calls layer k-1.
	perLayer := spec.Funcs / spec.CallDepth
	if perLayer < 1 {
		perLayer = 1
	}
	var prevLayer []string
	total := 0
	for layer := 0; layer < spec.CallDepth && total < spec.Funcs; layer++ {
		var cur []string
		for i := 0; i < perLayer && total < spec.Funcs; i++ {
			name := fmt.Sprintf("fn_l%d_%d", layer, i)
			genFunc(b, rng, name, types[rng.Intn(len(types))], prevLayer)
			cur = append(cur, name)
			total++
		}
		prevLayer = cur
	}
	// A root driver calling the top layer keeps everything reachable.
	b.BeginFunc("app_main")
	b.SetFile(spec.Name + ".c")
	for _, fn := range prevLayer {
		t := types[rng.Intn(len(types))]
		obj := b.PAlloc("", t)
		b.Call("", fn, obj)
	}
	b.Ret()
	return m
}

// genFunc emits one function: a persistent update sequence, a branch, a
// loop, and calls into the previous layer, all persistency-correct
// (write → flush → fence) so the generated module is mostly clean.
func genFunc(b *ir.Builder, rng *rand.Rand, name string, t *ir.Type, callees []string) {
	b.BeginFunc(name, ir.Pm("p", ir.PtrTo(t)))
	b.SetFile(name + ".c")
	line := 10
	stores := 2 + rng.Intn(4)
	fields := []string{"a", "b", "c"}
	for s := 0; s < stores; s++ {
		f := fields[rng.Intn(len(fields))]
		b.Line(line)
		b.StoreField("p", f, ir.C(int64(rng.Intn(100))))
		b.Line(line + 1)
		b.FlushField("p", f)
		b.Fence()
		line += 3
	}
	// A transaction with a logged update to a function-local persistent
	// object (each function owns its transactional state, so consecutive
	// transactions in merged traces touch distinct objects).
	b.Line(line)
	txObj := b.PAlloc("", t)
	b.TxBegin()
	b.TxAdd(txObj)
	b.Store(b.FieldAddrOf(txObj, "a"), ir.C(1))
	b.TxEnd()
	b.Fence()
	line += 3
	// A small loop over the array field.
	b.Const("i", 0)
	b.Br("loop")
	b.Label("loop")
	b.Bin("cond", "lt", ir.R("i"), ir.C(3))
	b.CondBr(ir.R("cond"), "body", "after")
	b.Label("body")
	arr := b.FieldAddr("p", "d")
	el := b.IndexAddr(arr, ir.R("i"))
	b.Line(line)
	b.Store(el, ir.R("i"))
	b.Flush(el)
	b.Fence()
	b.Bin("i", "add", ir.R("i"), ir.C(1))
	b.Br("loop")
	b.Label("after")
	// Calls into the previous layer.
	if len(callees) > 0 {
		n := 1 + rng.Intn(2)
		for c := 0; c < n; c++ {
			b.Call("", callees[rng.Intn(len(callees))], ir.R("p"))
		}
	}
	b.Ret()
}
