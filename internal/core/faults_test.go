package core

import (
	"context"
	"testing"

	"deepmc/internal/faultinj"
	"deepmc/internal/ir"
)

const strandSrc = `
module strands

type logbuf struct {
	cursor: int
	data: [16]int
}

func append_two(l: *logbuf) {
	file "logbuf.c"
	strandbegin 1        @10
	store %l.cursor, 1   @11
	flush %l.cursor      @12
	strandend 1          @13
	strandbegin 2        @14
	store %l.cursor, 2   @15
	flush %l.cursor      @16
	strandend 2          @17
	fence                @18
	ret
}

func main() {
	%l = palloc logbuf
	call append_two(%l)
	ret
}
`

const cleanSrc = `
module clean

type counter struct {
	value: int
}

func main() {
	file "c.c"
	%c = palloc counter
	store %c.value, 1  @5
	flush %c.value     @6
	fence              @7
	store %c.value, 2  @8
	flush %c.value     @9
	fence              @10
	ret
}
`

// TestDynamicConvergesUnderInjection runs the strand-race detector with
// and without fault injection: the injected faults are all legal under
// the persistency contract, so the happens-before verdicts must be
// identical — same WAW race found, nothing extra.
func TestDynamicConvergesUnderInjection(t *testing.T) {
	m := ir.MustParse(strandSrc)
	base, err := RunDynamic(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Warnings) == 0 {
		t.Fatal("baseline dynamic run found no strand race")
	}
	fc := &faultinj.Config{Classes: faultinj.AllClasses(), Rate: 1, Seed: 3}
	faulted, sched, err := RunDynamicFaulted(context.Background(), m, "main", fc)
	if err != nil {
		t.Fatal(err)
	}
	if sched == nil || sched.Injections() == 0 {
		t.Fatal("rate-1 injection never fired on a flush-bearing program")
	}
	if base.String() != faulted.String() {
		t.Fatalf("dynamic verdicts diverged under injection:\n%s\nvs\n%s\nschedule:\n%s",
			base, faulted, sched.Log())
	}
}

// TestDynamicCleanStaysCleanUnderInjection: a correct program must not
// alarm under injection — the fault classes stay within what the
// contract already permits.
func TestDynamicCleanStaysCleanUnderInjection(t *testing.T) {
	m := ir.MustParse(cleanSrc)
	for seed := int64(1); seed <= 5; seed++ {
		fc := &faultinj.Config{Classes: faultinj.AllClasses(), Rate: 1, Seed: seed}
		rep, _, err := RunDynamicFaulted(context.Background(), m, "main", fc)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Warnings) != 0 {
			t.Fatalf("seed %d: clean program alarmed under injection:\n%s", seed, rep)
		}
	}
}

// TestRunDynamicFaultedReplay: the same seed yields the same schedule
// log and the same report, byte for byte.
func TestRunDynamicFaultedReplay(t *testing.T) {
	m := ir.MustParse(strandSrc)
	fc := &faultinj.Config{Classes: faultinj.AllClasses(), Rate: 0.5, Seed: 17}
	r1, s1, err := RunDynamicFaulted(context.Background(), m, "main", fc)
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := RunDynamicFaulted(context.Background(), m, "main", fc)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Log() != s2.Log() {
		t.Fatalf("schedules diverged:\n%s\nvs\n%s", s1.Log(), s2.Log())
	}
	if r1.String() != r2.String() {
		t.Fatalf("reports diverged:\n%s\nvs\n%s", r1, r2)
	}
}
