package core

import (
	"strings"
	"testing"

	"deepmc/internal/corpus"
	"deepmc/internal/ir"
)

func modelName(p *corpus.Program) string {
	return p.Model.String()
}

// TestParallelMatchesSerial is the determinism gate for the parallel
// pipeline: the full corpus, analyzed at Workers=1, 2 and 8, must yield
// byte-identical sorted warning sets.  Ten iterations (each with a
// fresh parse, fresh DSA and fresh goroutine interleavings) shake out
// scheduling- and map-order-dependent behavior.
func TestParallelMatchesSerial(t *testing.T) {
	progs := corpus.All()
	baseline := make(map[string]string, len(progs))
	for _, p := range progs {
		rep, err := Analyze(mustModule(t, p), Config{Model: modelName(p), Workers: 1})
		if err != nil {
			t.Fatalf("%s: serial analysis failed: %v", p.Name, err)
		}
		var b strings.Builder
		b.WriteString(rep.String())
		baseline[p.Name] = b.String()
		if len(rep.Warnings) == 0 {
			t.Fatalf("%s: serial run found no warnings; comparison would be vacuous", p.Name)
		}
	}
	for iter := 0; iter < 10; iter++ {
		for _, p := range progs {
			for _, workers := range []int{1, 2, 8} {
				rep, err := Analyze(mustModule(t, p), Config{Model: modelName(p), Workers: workers})
				if err != nil {
					t.Fatalf("iter %d %s workers=%d: %v", iter, p.Name, workers, err)
				}
				if got := rep.String(); got != baseline[p.Name] {
					t.Fatalf("iter %d %s workers=%d: report diverged from serial\n--- serial:\n%s--- parallel:\n%s",
						iter, p.Name, workers, baseline[p.Name], got)
				}
			}
		}
	}
}

// TestAnalyzeJobsMatchesSequential pins the batch entry point: reports
// align with the job order and equal per-module Analyze results.
func TestAnalyzeJobsMatchesSequential(t *testing.T) {
	progs := corpus.All()
	jobs := make([]Job, len(progs))
	want := make([]string, len(progs))
	for i, p := range progs {
		jobs[i] = Job{Module: mustModule(t, p), Config: Config{Model: modelName(p), Workers: 2}}
		rep, err := Analyze(mustModule(t, p), Config{Model: modelName(p), Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep.String()
	}
	for _, workers := range []int{1, 4} {
		reps, err := AnalyzeJobs(jobs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(reps) != len(jobs) {
			t.Fatalf("workers=%d: got %d reports for %d jobs", workers, len(reps), len(jobs))
		}
		for i, rep := range reps {
			if rep.String() != want[i] {
				t.Errorf("workers=%d: job %d (%s) report differs from sequential run", workers, i, progs[i].Name)
			}
		}
	}
}

// TestAnalyzeAllSharedConfig covers the single-config batch wrapper.
func TestAnalyzeAllSharedConfig(t *testing.T) {
	var ms []*ir.Module
	for _, p := range corpus.All() {
		ms = append(ms, mustModule(t, p))
	}
	reps, err := AnalyzeAll(ms, Config{Model: "strict", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(ms) {
		t.Fatalf("got %d reports for %d modules", len(reps), len(ms))
	}
	for i, rep := range reps {
		if rep == nil {
			t.Fatalf("module %d: nil report without error", i)
		}
	}
}

// TestAnalyzeJobsFirstErrorWins pins the error contract: the first
// failing job (in input order) supplies the returned error, healthy
// slots still carry their reports.
func TestAnalyzeJobsFirstErrorWins(t *testing.T) {
	good := mustModule(t, corpus.PMDK())
	jobs := []Job{
		{Module: good, Config: Config{Model: "strict"}},
		{Module: good, Config: Config{Model: "bogus-a"}},
		{Module: good, Config: Config{Model: "bogus-b"}},
	}
	reps, err := AnalyzeJobs(jobs, 4)
	if err == nil {
		t.Fatal("expected an error from the bogus-model jobs")
	}
	if !strings.Contains(err.Error(), "bogus-a") {
		t.Errorf("error is not the first failing job's: %v", err)
	}
	if reps[0] == nil {
		t.Error("healthy job lost its report")
	}
	if reps[1] != nil || reps[2] != nil {
		t.Error("failing jobs should have nil reports")
	}
}

// TestWorkersConfigResolution pins the Workers defaulting rules.
func TestWorkersConfigResolution(t *testing.T) {
	if got := (Config{}).workers(); got < 1 {
		t.Errorf("default workers = %d, want >= 1 (GOMAXPROCS)", got)
	}
	if got := (Config{Workers: -3}).workers(); got != 1 {
		t.Errorf("negative workers resolved to %d, want 1", got)
	}
	if got := (Config{Workers: 7}).workers(); got != 7 {
		t.Errorf("explicit workers resolved to %d, want 7", got)
	}
}
