package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"deepmc/internal/corpus"
	"deepmc/internal/ir"
)

// spinSrc is a PIR program whose main loops long enough that any
// cancellation test can interrupt it mid-run: each iteration stores,
// flushes and fences one persistent field, driving the dynamic tracker
// and the crash planner through millions of persist-relevant steps.
const spinSrc = `
module spin

type cell struct {
	n: int
	v: int
}

func main() {
	file "spin.c"
	%c = alloc cell
	%p = palloc cell
	store %c.n, 50000000
	br loop
loop:
	%i = load %c.n
	%z = lt %i, 1
	condbr %z, done, body
body:
	store %p.v, %i   @10
	flush %p.v       @11
	fence            @12
	%d = sub %i, 1
	store %c.n, %d
	br loop
done:
	ret
}
`

func spinModule(t *testing.T) *ir.Module {
	t.Helper()
	m, err := ir.Parse(spinSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

// leakCheck samples the goroutine count before the test body and fails
// if it has grown afterwards (with settle retries — the runtime needs a
// moment to reap workers).  goleak is unavailable, so this is the
// counting harness standing in for it.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		for i := 0; i < 50; i++ {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	}
}

// TestRunDynamicCancelMidRun cancels the dynamic tracker mid-loop and
// requires a fast return carrying a partial report (findings so far
// plus a skip annotation), not an error and not a hang.
func TestRunDynamicCancelMidRun(t *testing.T) {
	defer leakCheck(t)()
	m := spinModule(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rep, sched, err := RunDynamicFaulted(ctx, m, "main", nil)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancelled run returned error: %v", err)
	}
	if sched != nil {
		t.Fatal("no faults configured but a schedule came back")
	}
	if elapsed > time.Second {
		t.Fatalf("cancelled run took %v, want <1s", elapsed)
	}
	if !rep.Partial() {
		t.Fatal("cancelled run did not mark the report partial")
	}
	found := false
	for _, s := range rep.Skipped {
		if s.Subject == "main" && strings.Contains(s.Reason, "canceled") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cancellation skip annotation: %v", rep.Skipped)
	}
}

// TestAnalyzeCtxDeadline runs static analysis of a real corpus module
// under an immediately-expired deadline: the report must come back
// partial (trace collection stops forking, unscanned functions are
// annotated) within a second, with no error.
func TestAnalyzeCtxDeadline(t *testing.T) {
	defer leakCheck(t)()
	m := mustModule(t, corpus.PMDK())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	rep, err := AnalyzeCtx(ctx, m, Config{Workers: 4})
	if err != nil {
		t.Fatalf("AnalyzeCtx: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-cancelled analysis took %v, want <1s", elapsed)
	}
	if !rep.Partial() {
		t.Fatal("pre-cancelled analysis produced a complete report")
	}
	// Every target function must be accounted for as skipped.
	if len(rep.Skipped) == 0 {
		t.Fatal("no skip annotations on a cancelled run")
	}
}

// TestAnalyzeCtxBackgroundMatchesAnalyze pins the zero-degradation
// path: with a background context the hardened pipeline is
// byte-identical to the plain one.
func TestAnalyzeCtxBackgroundMatchesAnalyze(t *testing.T) {
	m := mustModule(t, corpus.PMFS())
	plain, err := Analyze(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := AnalyzeCtx(context.Background(), m, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != ctxed.String() {
		t.Fatalf("hardened pipeline diverged:\n%s\nvs\n%s", plain, ctxed)
	}
}

// TestAnalyzeJobsCtxPartialResults checks per-job isolation: one job
// with an absurdly short module timeout degrades to a partial report
// (or a deadline error) while its siblings complete normally.
func TestAnalyzeJobsCtxPartialResults(t *testing.T) {
	defer leakCheck(t)()
	slow := mustModule(t, corpus.PMDK())
	fast := mustModule(t, corpus.Mnemosyne())
	jobs := []Job{
		{Module: slow, Config: Config{ModuleTimeout: time.Nanosecond}},
		{Module: fast, Config: Config{}},
	}
	reps, errs := AnalyzeJobsCtx(context.Background(), jobs, 2)
	if len(reps) != 2 || len(errs) != 2 {
		t.Fatalf("got %d reports, %d errors", len(reps), len(errs))
	}
	if reps[0] != nil && !reps[0].Partial() {
		t.Error("nanosecond-deadline job produced a complete report")
	}
	if reps[0] == nil && !errors.Is(errs[0], context.DeadlineExceeded) {
		t.Errorf("deadline job: nil report with error %v", errs[0])
	}
	if errs[1] != nil || reps[1] == nil || reps[1].Partial() {
		t.Errorf("sibling job degraded too: rep=%v err=%v", reps[1], errs[1])
	}
	if len(reps[1].Warnings) == 0 {
		t.Error("sibling corpus module reported no warnings")
	}
}

// TestAnalyzeJobsCtxPanicIsolation feeds one poisoned job (nil module)
// into a batch and requires the panic to surface as that job's error
// while the rest complete.
func TestAnalyzeJobsCtxPanicIsolation(t *testing.T) {
	defer leakCheck(t)()
	good := mustModule(t, corpus.Mnemosyne())
	jobs := []Job{
		{Module: nil, Config: Config{}},
		{Module: good, Config: Config{}},
	}
	reps, errs := AnalyzeJobsCtx(context.Background(), jobs, 2)
	if errs[0] == nil {
		t.Error("nil-module job reported no error")
	}
	if errs[1] != nil || reps[1] == nil {
		t.Errorf("healthy job failed alongside: %v", errs[1])
	}
}

// TestAnalyzeJobsFirstErrorCompat pins the legacy wrapper: AnalyzeJobs
// surfaces the first failure as its single error.
func TestAnalyzeJobsFirstErrorCompat(t *testing.T) {
	jobs := []Job{{Module: nil, Config: Config{}}}
	_, err := AnalyzeJobs(jobs, 1)
	if err == nil {
		t.Fatal("AnalyzeJobs swallowed the job error")
	}
}
