// Package core is DeepMC's top-level facade: the paper's "set a flag in
// the compiler configuration" interface (§4.5).  A user picks a
// persistency model (-strict, -epoch or -strand), hands over a PIR
// module, and receives the combined static + dynamic report.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"deepmc/internal/anacache"
	"deepmc/internal/checker"
	"deepmc/internal/dsa"
	"deepmc/internal/dynamic"
	"deepmc/internal/faultinj"
	"deepmc/internal/interp"
	"deepmc/internal/ir"
	"deepmc/internal/passes"
	"deepmc/internal/pmcontract"
	"deepmc/internal/report"
	"deepmc/internal/trace"
)

// Config mirrors DeepMC's compile-time configuration.
type Config struct {
	// Model is the declared persistency model: "strict", "epoch" or
	// "strand" (the paper's single required flag).
	Model string
	// PModel is the hardware persistency contract: "x86" (or empty, the
	// default — clwb/sfence staging) or "cxl" (global persist barriers
	// with a device-side persistence domain covering the persistent
	// heap).  Orthogonal to Model: the persistency model says what order
	// the program promised, the contract says what the hardware durably
	// does.  The contract reshapes the applicable pass set (see
	// passes.ResolveEnabledFor) and every report is tagged with it.
	PModel string
	// AllFunctions checks every function standalone instead of root
	// traces only.
	AllFunctions bool
	// FieldInsensitive disables DSA field sensitivity (ablation).
	FieldInsensitive bool
	// NoPathPriority disables persistent-path prioritization in trace
	// collection (ablation).
	NoPathPriority bool
	// LoopIterations overrides the trace collector's loop bound
	// (default 10, as in the paper).
	LoopIterations int
	// MaxTraceEntries overrides the per-trace entry budget (default
	// 4096).  A function whose merged traces exceed it is analyzed up to
	// the cap and reported as partial with a budget-attributed skip —
	// the serve daemon's defense against pathological inputs whose
	// interprocedural splice would otherwise grow without bound.
	MaxTraceEntries int
	// MaxPaths overrides the per-function explored-path budget
	// (default 64).
	MaxPaths int
	// PersistentAllocFns names external allocation functions returning
	// persistent objects.
	PersistentAllocFns []string
	// Workers is the number of concurrent static-checker workers.
	// 0 selects runtime.GOMAXPROCS(0); 1 runs serially.  Any worker
	// count produces a byte-identical report: traces are collected in
	// call-graph post-order waves into a shared memoized cache, and
	// per-function findings merge in module declaration order.
	Workers int
	// ModuleTimeout bounds each module's analysis in batch runs
	// (AnalyzeJobs/AnalyzeAll); 0 means no per-module deadline.  A
	// module that exceeds it comes back as a partial report annotated
	// with the skipped functions, not as an error.
	ModuleTimeout time.Duration
	// Passes restricts the enabled pass set to the given pass IDs (see
	// package passes; `deepmc passes` lists them).  Empty enables every
	// registered pass.
	Passes []string
	// DisablePasses removes the named passes from the enabled set.
	// Disabling a pass removes exactly its diagnostics: gating happens
	// at the emission sites, so the shared scan state is unperturbed.
	DisablePasses []string
	// CacheDir enables the analysis cache's on-disk verdict tier in the
	// given directory (created if missing).  Setting it turns caching on
	// even when Cache is nil.
	CacheDir string
	// Cache memoizes per-function analysis artifacts (trace sets, DSA
	// summaries, per-pass verdicts) across runs and modules, keyed by
	// content fingerprints; see package anacache.  Nil with an empty
	// CacheDir analyzes cold.
	Cache *anacache.Cache
}

// ResolvedWorkers resolves the configured worker count: 0 becomes
// runtime.GOMAXPROCS(0), negative values clamp to 1.
func (c Config) ResolvedWorkers() int { return c.workers() }

// workers resolves the configured worker count.
func (c Config) workers() int {
	if c.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if c.Workers < 0 {
		return 1
	}
	return c.Workers
}

// contract parses the configured hardware persistency contract.
func (c Config) contract() (pmcontract.Contract, error) {
	return pmcontract.ParseContract(c.PModel)
}

// checkerOptions lowers the configuration.
func (c Config) checkerOptions() (checker.Options, error) {
	model, err := checker.ParseModel(orDefault(c.Model, "strict"))
	if err != nil {
		return checker.Options{}, err
	}
	ct, err := c.contract()
	if err != nil {
		return checker.Options{}, err
	}
	enabled, err := c.enabledPasses()
	if err != nil {
		return checker.Options{}, err
	}
	opts := checker.DefaultOptions(model)
	opts.Contract = ct
	opts.AllFunctions = c.AllFunctions
	opts.DSA.FieldSensitive = !c.FieldInsensitive
	opts.DSA.PersistentAllocFns = c.PersistentAllocFns
	opts.Trace.PrioritizePersistent = !c.NoPathPriority
	if c.LoopIterations > 0 {
		opts.Trace.LoopIterations = c.LoopIterations
	}
	if c.MaxTraceEntries > 0 {
		opts.Trace.MaxTraceEntries = c.MaxTraceEntries
	}
	if c.MaxPaths > 0 {
		opts.Trace.MaxPaths = c.MaxPaths
	}
	opts.Disabled = passes.DisabledStaticRules(enabled)
	return opts, nil
}

// enabledPasses resolves the configured pass selection against the
// registry (unknown IDs are errors, not silent no-ops) and the
// configured contract (explicitly selecting a pass inapplicable under
// -pmodel is an error too, never a silent no-op).
func (c Config) enabledPasses() (map[string]bool, error) {
	ct, err := c.contract()
	if err != nil {
		return nil, err
	}
	return passes.ResolveEnabledFor(c.Passes, c.DisablePasses, ct.EffectiveID())
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

// Analyze runs DeepMC's offline (static) analysis over a module, using
// cfg.Workers concurrent checker workers.
func Analyze(m *ir.Module, cfg Config) (*report.Report, error) {
	return AnalyzeCtx(context.Background(), m, cfg)
}

// AnalyzeCtx is Analyze with cancellation and graceful degradation.
// Setup failures (verify, bad model) are errors; once checking starts a
// done context yields a partial report whose Skipped annotations name
// the functions not (fully) scanned — nil error, so completed findings
// are never discarded.
func AnalyzeCtx(ctx context.Context, m *ir.Module, cfg Config) (*report.Report, error) {
	if err := ir.Verify(m); err != nil {
		return nil, err
	}
	opts, err := cfg.checkerOptions()
	if err != nil {
		return nil, err
	}
	cache, err := cfg.cache()
	if err != nil {
		return nil, err
	}
	var rep *report.Report
	if cache == nil {
		rep = checker.New(m, opts).CheckModuleParallelCtx(ctx, cfg.workers())
	} else {
		rep = analyzeCached(ctx, m, cfg, opts, cache)
	}
	rep.Contract = opts.Contract.Name()
	return rep, nil
}

// Job pairs one module with its configuration for batch analysis.
type Job struct {
	Module *ir.Module
	Config Config
}

// AnalyzeJobs runs the static analysis over a batch of modules with up
// to workers (0 = runtime.GOMAXPROCS) modules in flight at once; each
// module's own check additionally fans out per its Config.Workers.  The
// returned reports align with jobs.  Partial-results semantics: every
// completed report is returned even when sibling jobs fail — failing
// slots are nil and the first error in input order is returned
// alongside them.
func AnalyzeJobs(jobs []Job, workers int) ([]*report.Report, error) {
	reports, errs := AnalyzeJobsCtx(context.Background(), jobs, workers)
	for _, err := range errs {
		if err != nil {
			return reports, err
		}
	}
	return reports, nil
}

// AnalyzeJobsCtx is AnalyzeJobs with cancellation, per-module
// deadlines, and panic isolation; it returns every job's outcome
// individually (slices align with jobs; a slot has a report, an error,
// or — for a module canceled mid-analysis — a partial report with skip
// annotations and no error).
//
//   - A job whose Config.ModuleTimeout is set runs under its own
//     deadline nested in ctx; exceeding it degrades that module to a
//     partial report without touching siblings.
//   - Once ctx itself is done, jobs not yet started fail fast with
//     ctx.Err().
//   - A panic inside one job (malformed module, rule bug) is recovered
//     into that job's error slot; sibling jobs keep running.
func AnalyzeJobsCtx(ctx context.Context, jobs []Job, workers int) ([]*report.Report, []error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	reports := make([]*report.Report, len(jobs))
	errs := make([]error, len(jobs))
	one := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				reports[i], errs[i] = nil, fmt.Errorf("core: job %d panicked: %v", i, r)
			}
		}()
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		jctx := ctx
		if t := jobs[i].Config.ModuleTimeout; t > 0 {
			var cancel context.CancelFunc
			jctx, cancel = context.WithTimeout(ctx, t)
			defer cancel()
		}
		reports[i], errs[i] = AnalyzeCtx(jctx, jobs[i].Module, jobs[i].Config)
	}
	if workers <= 1 {
		for i := range jobs {
			one(i)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					one(i)
				}
			}()
		}
		for i := range jobs {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	return reports, errs
}

// AnalyzeAll analyzes a whole corpus of modules under one shared
// configuration, pipelining the per-module runs across cfg.Workers.
func AnalyzeAll(ms []*ir.Module, cfg Config) ([]*report.Report, error) {
	reports, errs := AnalyzeAllCtx(context.Background(), ms, cfg)
	for _, err := range errs {
		if err != nil {
			return reports, err
		}
	}
	return reports, nil
}

// AnalyzeAllCtx is AnalyzeAll with AnalyzeJobsCtx's per-job outcome
// semantics.
func AnalyzeAllCtx(ctx context.Context, ms []*ir.Module, cfg Config) ([]*report.Report, []error) {
	jobs := make([]Job, len(ms))
	for i, m := range ms {
		jobs[i] = Job{Module: m, Config: cfg}
	}
	return AnalyzeJobsCtx(ctx, jobs, cfg.workers())
}

// AnalyzeSource parses PIR text and analyzes it.
func AnalyzeSource(src string, cfg Config) (*report.Report, error) {
	m, err := ir.Parse(src)
	if err != nil {
		return nil, err
	}
	return Analyze(m, cfg)
}

// RunDynamic executes an entry function under the instrumented runtime
// (online analysis) and returns the dynamic report.
func RunDynamic(m *ir.Module, entry string, args ...int64) (*report.Report, error) {
	rep, _, err := RunDynamicFaulted(context.Background(), m, entry, nil, args...)
	return rep, err
}

// RunDynamicCtx is RunDynamic with cancellation: a run canceled
// mid-execution returns the findings accumulated so far as a partial
// report (annotated, nil error) rather than discarding them.
func RunDynamicCtx(ctx context.Context, m *ir.Module, entry string, args ...int64) (*report.Report, error) {
	rep, _, err := RunDynamicFaulted(ctx, m, entry, nil, args...)
	return rep, err
}

// RunDynamicCfg is RunDynamicFaulted honoring cfg's pass selection:
// dynamic detectors disabled by -disable-pass (DMC-D01 WAW, DMC-D02
// RAW) are gated at their emission sites, so disabling one leaves the
// other's verdicts untouched.
func RunDynamicCfg(ctx context.Context, m *ir.Module, cfg Config, entry string, faults *faultinj.Config, args ...int64) (*report.Report, *faultinj.Schedule, error) {
	enabled, err := cfg.enabledPasses()
	if err != nil {
		return nil, nil, err
	}
	ct, err := cfg.contract()
	if err != nil {
		return nil, nil, err
	}
	return runDynamicContract(ctx, m, entry, faults, passes.DisabledDynamicCodes(enabled), ct, args...)
}

// RunDynamicFaulted is RunDynamicCtx with deterministic fault injection
// (package faultinj) wrapped around the instrumented runtime; the
// returned schedule carries the injection log (nil when faults is nil).
// The happens-before detector sees the same event stream plus injected
// legal perturbations — dropped flushes retried at fences keep the
// GlobalFence epoch advancing, so strand-race detection converges to
// the same verdicts.
func RunDynamicFaulted(ctx context.Context, m *ir.Module, entry string, faults *faultinj.Config, args ...int64) (*report.Report, *faultinj.Schedule, error) {
	return runDynamic(ctx, m, entry, faults, nil, args...)
}

// runDynamic is the shared dynamic-run engine beneath the RunDynamic*
// wrappers.  disabled maps dynamic diagnostic codes to suppress.
func runDynamic(ctx context.Context, m *ir.Module, entry string, faults *faultinj.Config, disabled map[string]bool, args ...int64) (*report.Report, *faultinj.Schedule, error) {
	return runDynamicContract(ctx, m, entry, faults, disabled, pmcontract.Contract{}, args...)
}

// runDynamicContract is runDynamic under an explicit hardware contract:
// the instrumented runtime models it (in-domain stores record
// pre-flushed), the fault wrapper discovers it through the runtime's
// ContractHolder, and the report is tagged with its name.
func runDynamicContract(ctx context.Context, m *ir.Module, entry string, faults *faultinj.Config, disabled map[string]bool, ct pmcontract.Contract, args ...int64) (rep *report.Report, sched *faultinj.Schedule, err error) {
	if verr := ir.Verify(m); verr != nil {
		return nil, nil, verr
	}
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("core: dynamic run of %s panicked: %v", entry, r)
		}
	}()
	rt := dynamic.NewRuntime(true)
	rt.Checker.Disabled = disabled
	rt.Contract = ct
	var hooks interp.Hooks = rt
	if faults != nil {
		sched = faultinj.New(*faults)
		hooks = faultinj.Wrap(rt, sched)
	}
	ip := interp.New(m, hooks)
	ip.SetContext(ctx)
	if _, rerr := ip.Run(entry, args...); rerr != nil {
		if ip.Canceled() {
			rep := rt.Checker.Report()
			rep.Contract = ct.Name()
			rep.AddSkipStage(entry, report.StageDynamic,
				fmt.Sprintf("dynamic run canceled after %d steps: %v", ip.Steps()-1, ctx.Err()))
			rep.Sort()
			return rep, sched, nil
		}
		return nil, sched, fmt.Errorf("core: dynamic run of %s: %w", entry, rerr)
	}
	rep = rt.Checker.Report()
	rep.Contract = ct.Name()
	return rep, sched, nil
}

// Check runs both analyses: static over the whole module, dynamic over
// the given entry points, merged into one report — the full Figure 8
// pipeline.
func Check(m *ir.Module, cfg Config, entries []string, args ...int64) (*report.Report, error) {
	rep, err := Analyze(m, cfg)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		dyn, _, err := RunDynamicCfg(context.Background(), m, cfg, e, nil, args...)
		if err != nil {
			return nil, err
		}
		rep.Merge(dyn)
	}
	rep.Sort()
	return rep, nil
}

// PipelineStats quantifies one analysis run for the Table 9 experiment.
type PipelineStats struct {
	Funcs   int
	Instrs  int
	Traces  int
	Nodes   int // DSG nodes across all functions
	Reports int
}

// AnalyzeWithStats is Analyze plus pipeline accounting.
func AnalyzeWithStats(m *ir.Module, cfg Config) (*report.Report, PipelineStats, error) {
	var st PipelineStats
	if err := ir.Verify(m); err != nil {
		return nil, st, err
	}
	opts, err := cfg.checkerOptions()
	if err != nil {
		return nil, st, err
	}
	ck := checker.New(m, opts)
	rep := ck.CheckModuleParallel(cfg.workers())
	st.Funcs = len(m.Funcs)
	st.Instrs = m.NumInstrs()
	for _, fn := range m.FuncNames() {
		st.Nodes += len(ck.Analysis.Graph(fn).Nodes())
		st.Traces += len(ck.Collector.FunctionTraces(fn))
	}
	st.Reports = len(rep.Warnings)
	return rep, st, nil
}

// InstrumentationPlan exposes the dynamic instrumenter's static plan.
func InstrumentationPlan(m *ir.Module, cfg Config, onlyAnnotated bool) (*dynamic.Plan, error) {
	if err := ir.Verify(m); err != nil {
		return nil, err
	}
	a := dsa.Analyze(m, dsa.Options{
		FieldSensitive:     !cfg.FieldInsensitive,
		PersistentAllocFns: cfg.PersistentAllocFns,
	})
	return dynamic.Instrument(m, a, onlyAnnotated), nil
}

// Traces exposes the collected traces of one function (CLI inspection).
func Traces(m *ir.Module, cfg Config, fn string) ([]*trace.Trace, error) {
	if err := ir.Verify(m); err != nil {
		return nil, err
	}
	opts, err := cfg.checkerOptions()
	if err != nil {
		return nil, err
	}
	ck := checker.New(m, opts)
	return ck.Collector.FunctionTraces(fn), nil
}
