// Package core is DeepMC's top-level facade: the paper's "set a flag in
// the compiler configuration" interface (§4.5).  A user picks a
// persistency model (-strict, -epoch or -strand), hands over a PIR
// module, and receives the combined static + dynamic report.
package core

import (
	"fmt"

	"deepmc/internal/checker"
	"deepmc/internal/dsa"
	"deepmc/internal/dynamic"
	"deepmc/internal/interp"
	"deepmc/internal/ir"
	"deepmc/internal/report"
	"deepmc/internal/trace"
)

// Config mirrors DeepMC's compile-time configuration.
type Config struct {
	// Model is the declared persistency model: "strict", "epoch" or
	// "strand" (the paper's single required flag).
	Model string
	// AllFunctions checks every function standalone instead of root
	// traces only.
	AllFunctions bool
	// FieldInsensitive disables DSA field sensitivity (ablation).
	FieldInsensitive bool
	// NoPathPriority disables persistent-path prioritization in trace
	// collection (ablation).
	NoPathPriority bool
	// LoopIterations overrides the trace collector's loop bound
	// (default 10, as in the paper).
	LoopIterations int
	// PersistentAllocFns names external allocation functions returning
	// persistent objects.
	PersistentAllocFns []string
}

// checkerOptions lowers the configuration.
func (c Config) checkerOptions() (checker.Options, error) {
	model, err := checker.ParseModel(orDefault(c.Model, "strict"))
	if err != nil {
		return checker.Options{}, err
	}
	opts := checker.DefaultOptions(model)
	opts.AllFunctions = c.AllFunctions
	opts.DSA.FieldSensitive = !c.FieldInsensitive
	opts.DSA.PersistentAllocFns = c.PersistentAllocFns
	opts.Trace.PrioritizePersistent = !c.NoPathPriority
	if c.LoopIterations > 0 {
		opts.Trace.LoopIterations = c.LoopIterations
	}
	return opts, nil
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

// Analyze runs DeepMC's offline (static) analysis over a module.
func Analyze(m *ir.Module, cfg Config) (*report.Report, error) {
	if err := ir.Verify(m); err != nil {
		return nil, err
	}
	opts, err := cfg.checkerOptions()
	if err != nil {
		return nil, err
	}
	return checker.New(m, opts).CheckModule(), nil
}

// AnalyzeSource parses PIR text and analyzes it.
func AnalyzeSource(src string, cfg Config) (*report.Report, error) {
	m, err := ir.Parse(src)
	if err != nil {
		return nil, err
	}
	return Analyze(m, cfg)
}

// RunDynamic executes an entry function under the instrumented runtime
// (online analysis) and returns the dynamic report.
func RunDynamic(m *ir.Module, entry string, args ...int64) (*report.Report, error) {
	if err := ir.Verify(m); err != nil {
		return nil, err
	}
	rt := dynamic.NewRuntime(true)
	ip := interp.New(m, rt)
	if _, err := ip.Run(entry, args...); err != nil {
		return nil, fmt.Errorf("core: dynamic run of %s: %w", entry, err)
	}
	return rt.Checker.Report(), nil
}

// Check runs both analyses: static over the whole module, dynamic over
// the given entry points, merged into one report — the full Figure 8
// pipeline.
func Check(m *ir.Module, cfg Config, entries []string, args ...int64) (*report.Report, error) {
	rep, err := Analyze(m, cfg)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		dyn, err := RunDynamic(m, e, args...)
		if err != nil {
			return nil, err
		}
		rep.Merge(dyn)
	}
	rep.Sort()
	return rep, nil
}

// PipelineStats quantifies one analysis run for the Table 9 experiment.
type PipelineStats struct {
	Funcs   int
	Instrs  int
	Traces  int
	Nodes   int // DSG nodes across all functions
	Reports int
}

// AnalyzeWithStats is Analyze plus pipeline accounting.
func AnalyzeWithStats(m *ir.Module, cfg Config) (*report.Report, PipelineStats, error) {
	var st PipelineStats
	if err := ir.Verify(m); err != nil {
		return nil, st, err
	}
	opts, err := cfg.checkerOptions()
	if err != nil {
		return nil, st, err
	}
	ck := checker.New(m, opts)
	rep := ck.CheckModule()
	st.Funcs = len(m.Funcs)
	st.Instrs = m.NumInstrs()
	for _, fn := range m.FuncNames() {
		st.Nodes += len(ck.Analysis.Graph(fn).Nodes())
		st.Traces += len(ck.Collector.FunctionTraces(fn))
	}
	st.Reports = len(rep.Warnings)
	return rep, st, nil
}

// InstrumentationPlan exposes the dynamic instrumenter's static plan.
func InstrumentationPlan(m *ir.Module, cfg Config, onlyAnnotated bool) (*dynamic.Plan, error) {
	if err := ir.Verify(m); err != nil {
		return nil, err
	}
	a := dsa.Analyze(m, dsa.Options{
		FieldSensitive:     !cfg.FieldInsensitive,
		PersistentAllocFns: cfg.PersistentAllocFns,
	})
	return dynamic.Instrument(m, a, onlyAnnotated), nil
}

// Traces exposes the collected traces of one function (CLI inspection).
func Traces(m *ir.Module, cfg Config, fn string) ([]*trace.Trace, error) {
	if err := ir.Verify(m); err != nil {
		return nil, err
	}
	opts, err := cfg.checkerOptions()
	if err != nil {
		return nil, err
	}
	ck := checker.New(m, opts)
	return ck.Collector.FunctionTraces(fn), nil
}
