package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"deepmc/internal/anacache"
	"deepmc/internal/ir"
	"deepmc/internal/report"
)

// tenFuncSrc builds a module of n independent root functions, each with
// its own persistent object and a deliberate unflushed write (so every
// function contributes one warning and one verdict-cache entry).
func tenFuncSrc(n int, mutated string) string {
	var b strings.Builder
	b.WriteString("module ten\n\ntype obj struct {\n\tval: int\n}\n")
	for i := 0; i < n; i++ {
		val := i + 1
		if fmt.Sprintf("f%d", i) == mutated {
			val = 99
		}
		fmt.Fprintf(&b, `
func f%d() {
	%%p = palloc obj
	store %%p.val, %d @%d
	ret
}
`, i, val, 100+i)
	}
	return b.String()
}

func renderReport(t *testing.T, rep *report.Report) string {
	t.Helper()
	rep.Sort()
	return rep.String()
}

// TestCacheWarmMatchesCold pins the headline guarantee: with a shared
// cache, a warm re-analysis renders byte-identical output to the cold
// run and to an uncached run, at every worker count.
func TestCacheWarmMatchesCold(t *testing.T) {
	src := tenFuncSrc(10, "")
	want := renderReport(t, mustAnalyze(t, src, Config{}))
	for _, workers := range []int{1, 2, 8} {
		cache, err := anacache.New("")
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Workers: workers, Cache: cache}
		cold := renderReport(t, mustAnalyze(t, src, cfg))
		warm := renderReport(t, mustAnalyze(t, src, cfg))
		if cold != want {
			t.Errorf("workers %d: cached cold run diverged from uncached\n--- want:\n%s--- got:\n%s", workers, want, cold)
		}
		if warm != cold {
			t.Errorf("workers %d: warm run diverged from cold\n--- cold:\n%s--- warm:\n%s", workers, cold, warm)
		}
		st := cache.Stats()
		if st.VerdictHits == 0 || st.VerdictMisses == 0 {
			t.Errorf("workers %d: expected both misses (cold) and hits (warm), stats %+v", workers, st)
		}
	}
}

func mustAnalyze(t *testing.T, src string, cfg Config) *report.Report {
	t.Helper()
	rep, err := AnalyzeSource(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCacheIncrementalRecompute is the issue's incremental scenario:
// mutate one function of a 10-function module and re-analyze against
// the same cache — exactly that function's artifacts are recomputed;
// the other nine are served from the cache.
func TestCacheIncrementalRecompute(t *testing.T) {
	cache, err := anacache.New("")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 4, Cache: cache}

	base := mustAnalyze(t, tenFuncSrc(10, ""), cfg)
	if len(base.Warnings) != 10 {
		t.Fatalf("expected 10 warnings from the base module, got %d", len(base.Warnings))
	}
	cold := cache.Stats()
	if cold.Stores != 10 || cold.VerdictMisses != 10 {
		t.Fatalf("cold run should miss and store all 10 verdicts, stats %+v", cold)
	}

	mutatedSrc := tenFuncSrc(10, "f5")
	got := mustAnalyze(t, mutatedSrc, cfg)
	warm := cache.Stats()

	if d := warm.VerdictMisses - cold.VerdictMisses; d != 1 {
		t.Errorf("expected exactly 1 verdict miss for the mutated function, got %d", d)
	}
	if d := warm.VerdictHits - cold.VerdictHits; d != 9 {
		t.Errorf("expected 9 verdict hits for the unchanged functions, got %d", d)
	}
	if d := warm.TraceMisses - cold.TraceMisses; d != 1 {
		t.Errorf("expected exactly 1 trace recompute, got %d", d)
	}
	if d := warm.Stores - cold.Stores; d != 1 {
		t.Errorf("expected exactly 1 new verdict store, got %d", d)
	}

	// The incremental report must equal a from-scratch analysis of the
	// mutated module byte for byte.
	want := renderReport(t, mustAnalyze(t, mutatedSrc, Config{}))
	if renderReport(t, got) != want {
		t.Errorf("incremental report diverged from scratch analysis\n--- want:\n%s--- got:\n%s",
			want, renderReport(t, got))
	}
}

// TestCacheComponentInvalidation: with call edges, mutating a callee
// recomputes its whole weakly-connected component but nothing else.
func TestCacheComponentInvalidation(t *testing.T) {
	src := func(line int) string {
		return fmt.Sprintf(`
module comp

type obj struct {
	val: int
}

func helper(p: *obj) {
	store %%p.val, 1 @%d
	ret
}

func rootA() {
	%%p = palloc obj
	call helper(%%p)
	ret
}

func rootB() {
	%%q = palloc obj
	store %%q.val, 2 @30
	ret
}
`, line)
	}
	cache, err := anacache.New("")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cache: cache}
	mustAnalyze(t, src(10), cfg)
	cold := cache.Stats()

	// Mutating helper invalidates {helper, rootA}; rootB stays cached.
	got := mustAnalyze(t, src(11), cfg)
	warm := cache.Stats()
	// Targets are the two roots: rootA misses (component changed), rootB
	// hits.  helper is not a target, so verdict traffic is 1 miss/1 hit.
	if d := warm.VerdictMisses - cold.VerdictMisses; d != 1 {
		t.Errorf("expected 1 verdict miss (rootA), got %d", d)
	}
	if d := warm.VerdictHits - cold.VerdictHits; d != 1 {
		t.Errorf("expected 1 verdict hit (rootB), got %d", d)
	}
	want := renderReport(t, mustAnalyze(t, src(11), Config{}))
	if renderReport(t, got) != want {
		t.Errorf("post-mutation report diverged from scratch analysis")
	}
}

// TestCacheDiskTierAcrossInstances: a cache re-opened on the same
// directory (a fresh process) serves verdicts from disk and renders the
// identical report.
func TestCacheDiskTierAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	src := tenFuncSrc(10, "")

	prime, err := anacache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := renderReport(t, mustAnalyze(t, src, Config{Cache: prime}))

	reopened, err := anacache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := renderReport(t, mustAnalyze(t, src, Config{Cache: reopened}))
	if warm != cold {
		t.Errorf("disk-tier warm run diverged\n--- cold:\n%s--- warm:\n%s", cold, warm)
	}
	st := reopened.Stats()
	if st.DiskHits != 10 {
		t.Errorf("expected all 10 verdicts from disk, stats %+v", st)
	}
	if st.TraceHits != 0 {
		t.Errorf("trace tier is memory-only; a fresh instance cannot hit it, stats %+v", st)
	}
}

// TestCacheDirConfig: CacheDir alone (no explicit Cache) enables the
// disk tier, so separate Config values — separate CLI invocations —
// share memoized verdicts.
func TestCacheDirConfig(t *testing.T) {
	dir := t.TempDir()
	src := tenFuncSrc(3, "")
	cold := renderReport(t, mustAnalyze(t, src, Config{CacheDir: dir}))
	warm := renderReport(t, mustAnalyze(t, src, Config{CacheDir: dir}))
	if warm != cold {
		t.Errorf("CacheDir-only warm run diverged\n--- cold:\n%s--- warm:\n%s", cold, warm)
	}
	probe, err := anacache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := probe.Stats()
	_ = st // probe only verifies the directory opens as a cache
}

// TestDisablePassExactness: disabling one pass removes exactly its
// diagnostics — the remaining report equals the full report minus the
// warnings carrying that pass's code, byte for byte.
func TestDisablePassExactness(t *testing.T) {
	// This module trips DMC-S01 (unflushed write) and DMC-S08 (flush of
	// an unmodified object) in separate functions.
	src := `
module mix

type obj struct {
	a: int
	b: int
}

func leak() {
	%p = palloc obj
	store %p.a, 1 @10
	ret
}

func wasteful() {
	%q = palloc obj
	store %q.a, 1 @20
	flush %q.a    @21
	flush %q.b    @22
	fence         @23
	ret
}
`
	full := mustAnalyze(t, src, Config{})
	codes := make(map[string]int)
	for _, w := range full.Warnings {
		codes[w.EffectiveCode()]++
	}
	if codes[report.CodeUnflushedWrite] == 0 || codes[report.CodeFlushUnmodified] == 0 {
		t.Fatalf("test premise broken: need S01 and S08 warnings, got %v", codes)
	}

	for _, disable := range []string{report.CodeUnflushedWrite, report.CodeFlushUnmodified} {
		got := mustAnalyze(t, src, Config{DisablePasses: []string{disable}})
		want := report.New()
		for _, w := range full.Warnings {
			if w.EffectiveCode() != disable {
				want.Add(w)
			}
		}
		if renderReport(t, got) != renderReport(t, want) {
			t.Errorf("disabling %s did not remove exactly its diagnostics\n--- want:\n%s--- got:\n%s",
				disable, renderReport(t, want), renderReport(t, got))
		}
	}

	// Unknown pass IDs are configuration errors, not silent no-ops.
	if _, err := AnalyzeSource(src, Config{DisablePasses: []string{"DMC-S99"}}); err == nil {
		t.Error("unknown pass ID in DisablePasses was accepted")
	}
	if _, err := AnalyzeSource(src, Config{Passes: []string{"nope"}}); err == nil {
		t.Error("unknown pass ID in Passes was accepted")
	}
}

// TestDisableDynamicPass: the dynamic WAW detector (DMC-D01) can be
// disabled independently of RAW, and disabling it removes the runtime
// strand-race diagnostic.
func TestDisableDynamicPass(t *testing.T) {
	src := `
module m

type acct struct {
	bal: int
}

func racy(a: *acct) {
	file "racy.c"
	strandbegin 1        @10
	store %a.bal, 100    @11
	flush %a.bal         @12
	strandend 1          @13
	strandbegin 2        @14
	store %a.bal, 200    @15
	flush %a.bal         @16
	strandend 2          @17
	fence                @18
	ret
}

func main() {
	%a = palloc acct
	call racy(%a)
	ret
}
`
	m := ir.MustParse(src)
	rep, _, err := RunDynamicCfg(context.Background(), m, Config{}, "main", nil)
	if err != nil {
		t.Fatal(err)
	}
	waw := 0
	for _, w := range rep.Warnings {
		if w.EffectiveCode() == report.CodeDynWAW {
			waw++
		}
	}
	if waw == 0 {
		t.Fatalf("test premise broken: expected a WAW race, report:\n%s", rep)
	}

	rep, _, err = RunDynamicCfg(context.Background(), m,
		Config{DisablePasses: []string{report.CodeDynWAW}}, "main", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rep.Warnings {
		if w.EffectiveCode() == report.CodeDynWAW {
			t.Errorf("disabled DMC-D01 still emitted: %s", w)
		}
	}
}

// TestCacheRespectsPassSelection: verdicts cached under one pass set
// must not leak into a run with a different pass set — the pass-set
// version is part of the verdict key.
func TestCacheRespectsPassSelection(t *testing.T) {
	cache, err := anacache.New("")
	if err != nil {
		t.Fatal(err)
	}
	src := tenFuncSrc(2, "")
	full := renderReport(t, mustAnalyze(t, src, Config{Cache: cache}))
	disabled := renderReport(t, mustAnalyze(t, src, Config{Cache: cache, DisablePasses: []string{report.CodeUnflushedWrite}}))
	if full == disabled {
		t.Fatal("disabling a pass changed nothing; the cache leaked across pass sets")
	}
	if strings.Contains(disabled, report.CodeUnflushedWrite) {
		t.Errorf("disabled pass's code still present:\n%s", disabled)
	}
	// And the traces were reused: the second run must not re-collect.
	st := cache.Stats()
	if st.TraceHits == 0 {
		t.Errorf("expected trace-tier reuse across pass sets, stats %+v", st)
	}
}
