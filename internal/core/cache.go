// Incremental analysis: AnalyzeCtx's cache-aware path.  With a Cache
// configured, every target function is first looked up by its content
// fingerprint; functions whose verdicts are memoized are omitted from
// the scan (and, transitively, from trace collection they alone would
// have demanded), and an all-hit run skips DSA and trace exploration
// entirely.  Cached and freshly computed per-function fragments merge
// in module declaration order, so a warm report is byte-identical to a
// cold one.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"deepmc/internal/anacache"
	"deepmc/internal/callgraph"
	"deepmc/internal/checker"
	"deepmc/internal/ir"
	"deepmc/internal/passes"
	"deepmc/internal/report"
)

// cache resolves the configured cache: an explicit Cache wins (shared
// in-memory tier across modules); otherwise a CacheDir constructs a
// fresh cache backed by that directory, so separate CLI invocations
// still share the disk tier.
func (c Config) cache() (*anacache.Cache, error) {
	if c.Cache != nil {
		return c.Cache, nil
	}
	if c.CacheDir == "" {
		return nil, nil
	}
	return anacache.New(c.CacheDir)
}

// fingerprintFacts lowers the analysis configuration into the fact
// strings the content fingerprints hash.  Trace facts cover everything
// that shapes per-function traces and DSA; verdict facts additionally
// cover the model and the enabled pass set, so changing the rule
// selection misses the verdict tier but still reuses collected traces.
func fingerprintFacts(opts checker.Options, enabled map[string]bool) (traceFacts, verdictFacts []string) {
	alloc := append([]string(nil), opts.DSA.PersistentAllocFns...)
	sort.Strings(alloc)
	traceFacts = []string{
		fmt.Sprintf("loop=%d", opts.Trace.LoopIterations),
		fmt.Sprintf("maxpaths=%d", opts.Trace.MaxPaths),
		fmt.Sprintf("maxvariants=%d", opts.Trace.MaxCalleeVariants),
		fmt.Sprintf("maxentries=%d", opts.Trace.MaxTraceEntries),
		fmt.Sprintf("prioritize=%v", opts.Trace.PrioritizePersistent),
		fmt.Sprintf("fieldsensitive=%v", opts.DSA.FieldSensitive),
		"pallocfns=" + strings.Join(alloc, ","),
	}
	verdictFacts = []string{
		"model=" + opts.Model.String(),
		"contract=" + opts.Contract.Key(),
		"passes=" + passes.Version(enabled),
	}
	return traceFacts, verdictFacts
}

// fragment reconstitutes one function's cached warning list as the
// private per-function report the cold path would have produced;
// replaying through Add in stored order preserves intra-function
// deduplication winners.
func fragment(ws []report.Warning) *report.Report {
	rep := report.New()
	for _, w := range ws {
		rep.Add(w)
	}
	return rep
}

// analyzeCached is AnalyzeCtx's engine when a cache is configured.  It
// never fails: cfg was validated by the caller and cache misses simply
// degrade to cold analysis.
func analyzeCached(ctx context.Context, m *ir.Module, cfg Config, opts checker.Options, cache *anacache.Cache) *report.Report {
	enabled, _ := cfg.enabledPasses() // validated by checkerOptions
	traceFacts, verdictFacts := fingerprintFacts(opts, enabled)
	fp := anacache.Fingerprint(m, traceFacts, verdictFacts)

	// Target selection must not pay for DSA (the all-hit path skips it):
	// roots come from the syntactic call graph, which is exactly the
	// graph the checker's analysis builds.
	var targets []string
	if opts.AllFunctions {
		targets = m.FuncNames()
	} else {
		for _, f := range callgraph.New(m).Roots() {
			targets = append(targets, f.Name)
		}
	}

	hits := make(map[string][]report.Warning, len(targets))
	for _, fn := range targets {
		if ws, ok := cache.LookupVerdicts(fp.Verdict[fn]); ok {
			hits[fn] = ws
		}
	}

	if len(hits) == len(targets) {
		// Warm path: every verdict is memoized — assemble the report
		// from the cached fragments and skip DSA, trace collection and
		// scanning outright.
		outs := make([]checker.FuncOutcome, len(targets))
		for i, fn := range targets {
			outs[i] = checker.FuncOutcome{Func: fn, Report: fragment(hits[fn])}
		}
		return checker.MergeOutcomes(outs)
	}

	ck := checker.New(m, opts)
	// Seed memoized trace sets so the precompute waves skip hit
	// functions' exploration; the scan still reads them via the memo.
	for _, fn := range m.FuncNames() {
		if art, ok := cache.LookupTraces(fp.Trace[fn]); ok {
			ck.Collector.Seed(fn, art.Traces, art.Truncated)
		}
	}

	omit := func(fn string) bool { _, ok := hits[fn]; return ok }
	outs := ck.CheckFunctionsCtx(ctx, cfg.workers(), omit)
	for i := range outs {
		fn := outs[i].Func
		if ws, ok := hits[fn]; ok {
			outs[i].Report = fragment(ws)
			continue
		}
		// Memoize only complete outcomes of an uncanceled run: partial
		// trace sets and panic-degraded scans must never become hits.
		if outs[i].Complete() && ctx.Err() == nil {
			cache.StoreVerdicts(fp.Verdict[fn], outs[i].Report.Warnings, ck.Analysis.FuncSummary(fn))
		}
	}
	if ctx.Err() == nil {
		for _, fn := range ck.Collector.ComputedFuncs() {
			cache.StoreTraces(fp.Trace[fn], &anacache.TraceArtifact{
				Traces:    ck.Collector.FunctionTraces(fn),
				DSA:       ck.Analysis.FuncSummary(fn),
				Truncated: ck.Collector.Truncated(fn),
			})
		}
	}
	return checker.MergeOutcomes(outs)
}
