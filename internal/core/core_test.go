package core

import (
	"strings"
	"testing"

	"deepmc/internal/corpus"
	"deepmc/internal/ir"
	"deepmc/internal/report"
)

func TestAnalyzeSourceWithModelFlag(t *testing.T) {
	src := `
module m

type o struct {
	a: int
}

func f() {
	%p = palloc o
	store %p.a, 1 @5
	fence         @6
	ret
}
`
	rep, err := AnalyzeSource(src, Config{Model: "strict"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) == 0 {
		t.Error("unflushed write not reported")
	}
	if _, err := AnalyzeSource(src, Config{Model: "bogus"}); err == nil {
		t.Error("bogus model accepted")
	}
	if _, err := AnalyzeSource("not pir", Config{}); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestDefaultModelIsStrict(t *testing.T) {
	rep, err := AnalyzeSource(`
module m

type o struct {
	a: int
}

func f() {
	%p = palloc o
	store %p.a, 1 @3
	flush %p.a    @4
	ret           @5
}
`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Strict flags the missing trailing barrier.
	found := false
	for _, w := range rep.Warnings {
		if w.Rule == report.RuleMissingBarrier {
			found = true
		}
	}
	if !found {
		t.Errorf("default model did not apply strict rules:\n%s", rep)
	}
}

func TestCheckCombinesStaticAndDynamic(t *testing.T) {
	src := `
module m

type o struct {
	a: int
}

func main() {
	%p = palloc o
	strandbegin 1  @10
	store %p.a, 1  @11
	flush %p.a     @12
	fence          @12
	strandend 1    @13
	strandbegin 2  @14
	store %p.a, 2  @15
	flush %p.a     @16
	fence          @16
	strandend 2    @17
	ret
}
`
	m := ir.MustParse(src)
	rep, err := Check(m, Config{Model: "strand"}, []string{"main"})
	if err != nil {
		t.Fatal(err)
	}
	// Static and dynamic find the same defect; the merged report
	// deduplicates it to one warning.
	found := 0
	for _, w := range rep.Warnings {
		if w.Rule == report.RuleStrandDependence {
			found++
		}
	}
	if found != 1 {
		t.Errorf("strand WAW warnings = %d, want 1 (deduplicated):\n%s", found, rep)
	}
	// Running the dynamic analysis alone shows its own report.
	dyn, err := RunDynamic(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn.Warnings) != 1 || !dyn.Warnings[0].Dynamic {
		t.Errorf("dynamic-only report wrong:\n%s", dyn)
	}
}

func TestAnalyzeWithStats(t *testing.T) {
	p := corpus.PMDK()
	rep, st, err := AnalyzeWithStats(mustModule(t, p), Config{Model: "strict"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Funcs == 0 || st.Instrs == 0 || st.Nodes == 0 || st.Traces == 0 {
		t.Errorf("stats empty: %+v", st)
	}
	if st.Reports != len(rep.Warnings) {
		t.Errorf("stats.Reports=%d, warnings=%d", st.Reports, len(rep.Warnings))
	}
}

func TestGenerateAppIsWellFormedAndMostlyClean(t *testing.T) {
	for _, spec := range AppSpecs() {
		spec.Funcs = 40 // keep the test quick
		m := GenerateApp(spec)
		if err := ir.Verify(m); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		rep, err := Analyze(m, Config{Model: "strict"})
		if err != nil {
			t.Fatal(err)
		}
		// The generator emits persistency-correct code; a handful of
		// incidental warnings from merged traces is acceptable, a flood
		// is a generator bug.
		if len(rep.Warnings) > spec.Funcs/4 {
			t.Errorf("%s: generated app produced %d warnings", spec.Name, len(rep.Warnings))
		}
	}
}

func TestGenerateAppDeterministic(t *testing.T) {
	a := ir.Print(GenerateApp(AppSpec{Name: "x", Funcs: 20, CallDepth: 2, Seed: 9}))
	b := ir.Print(GenerateApp(AppSpec{Name: "x", Funcs: 20, CallDepth: 2, Seed: 9}))
	if a != b {
		t.Error("generation not deterministic")
	}
	if !strings.Contains(a, "txbegin") || !strings.Contains(a, "palloc") {
		t.Error("generated app misses expected constructs")
	}
}

func TestInstrumentationPlanOnCorpus(t *testing.T) {
	p := corpus.Mnemosyne()
	plan, err := InstrumentationPlan(mustModule(t, p), Config{Model: "epoch"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PersistentMemOps == 0 {
		t.Error("plan found no persistent ops in the Mnemosyne corpus")
	}
	if plan.AnnotatedMemOps > plan.PersistentMemOps {
		t.Error("annotated ops exceed persistent ops")
	}
}

func TestTracesAccessor(t *testing.T) {
	m := mustModule(t, corpus.PMDK())
	ts, err := Traces(m, Config{Model: "strict"}, "demo_btree")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) == 0 {
		t.Error("no traces for demo_btree")
	}
}
