package core

import (
	"testing"

	"deepmc/internal/corpus"
)

// FuzzAnalyze drives the full static pipeline (parse → verify → DSA →
// trace collection → parallel rule checking) end to end on mutated PIR
// sources, complementing the parser-only fuzz target in internal/ir.
// Invariants: AnalyzeSource never panics, and it returns exactly one of
// (report, error) — never both, never neither.
func FuzzAnalyze(f *testing.F) {
	for _, p := range corpus.All() {
		f.Add(p.Source)
	}
	f.Add(`
module seed

type o struct {
	a: int
	b: int
}

func f(p: *o) {
	store %p.a, 1 @3
	flush %p.a    @4
	fence         @5
	ret
}

func main() {
	%p = palloc o
	txbegin
	txadd %p.a
	call f(%p)
	txend
	ret
}
`)
	f.Add("module empty\n")
	f.Add("not pir at all")
	models := []string{"strict", "epoch", "strand"}
	f.Fuzz(func(t *testing.T, src string) {
		// Pick the model from the input so all three rule sets get
		// exercised, deterministically per input.
		model := models[len(src)%len(models)]
		rep, err := AnalyzeSource(src, Config{Model: model, Workers: 2})
		if err != nil && rep != nil {
			t.Fatalf("model %s: AnalyzeSource returned both a report and an error: %v", model, err)
		}
		if err == nil && rep == nil {
			t.Fatalf("model %s: AnalyzeSource returned neither report nor error", model)
		}
	})
}
