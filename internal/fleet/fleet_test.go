package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"deepmc/internal/core"
	"deepmc/internal/corpus"
	"deepmc/internal/report"
)

// testJobs builds a deterministic mixed workload: the four corpus
// programs plus n small generated apps.
func testJobs(t *testing.T, n int) []Job {
	t.Helper()
	var jobs []Job
	for _, p := range corpus.All() {
		m, err := p.Module()
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{
			Name:   p.Name,
			Module: m,
			Config: core.Config{Model: p.Model.String(), Workers: 1},
		})
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("app-%02d", i)
		m := core.GenerateApp(core.AppSpec{Name: name, Funcs: 10 + i%7, CallDepth: 2, Seed: int64(1000 + i)})
		jobs = append(jobs, Job{
			Name:   name,
			Module: m,
			Config: core.Config{Model: "epoch", AllFunctions: true, Workers: 1},
		})
	}
	return jobs
}

// batchRender is the single-node reference: the same jobs analyzed
// serially with no cache, rendered in declaration order.
func batchRender(t *testing.T, jobs []Job) string {
	t.Helper()
	var b strings.Builder
	for _, j := range jobs {
		rep, err := core.AnalyzeCtx(context.Background(), j.Module, j.Config)
		if err != nil {
			t.Fatalf("batch %s: %v", j.Name, err)
		}
		b.WriteString("== ")
		b.WriteString(j.Name)
		b.WriteString("\n")
		b.WriteString(rep.String())
	}
	return b.String()
}

func TestRingDeterministicAndLiveAware(t *testing.T) {
	r := newRing(8, 16)
	names := []string{"PMDK", "PMFS", "NVM-Direct", "Mnemosyne", "app-0", "app-1"}
	for _, n := range names {
		a, b := r.owner(n), r.owner(n)
		if a != b {
			t.Fatalf("owner(%s) not deterministic: %d vs %d", n, a, b)
		}
		if a < 0 || a >= 8 {
			t.Fatalf("owner(%s) out of range: %d", n, a)
		}
	}
	// With the raw owner declared dead, ownerLive must pick a different
	// live shard, deterministically.
	for _, n := range names {
		deadShard := r.owner(n)
		live := func(s int) bool { return s != deadShard }
		got := r.ownerLive(n, live)
		if got == deadShard {
			t.Fatalf("ownerLive(%s) returned the dead shard %d", n, got)
		}
		if got != r.ownerLive(n, live) {
			t.Fatalf("ownerLive(%s) not deterministic", n)
		}
	}
	// All shards spread across enough names: no shard owns everything.
	owners := map[int]bool{}
	for i := 0; i < 64; i++ {
		owners[r.owner(fmt.Sprintf("mod-%d", i))] = true
	}
	if len(owners) < 4 {
		t.Fatalf("64 names landed on only %d of 8 shards", len(owners))
	}
}

// TestFleetMatchesBatch: fleet output is byte-identical to single-node
// batch output at several shard counts, warm or cold.
func TestFleetMatchesBatch(t *testing.T) {
	jobs := testJobs(t, 8)
	ref := batchRender(t, jobs)
	for _, shards := range []int{1, 3, 8} {
		f, err := New(Config{Shards: shards, CacheDir: t.TempDir(), Seed: int64(shards)})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ { // cold then tier-warm
			res := f.Run(context.Background(), jobs)
			if err := res.Err(); err != nil {
				t.Fatalf("shards=%d round=%d: %v", shards, round, err)
			}
			if got := res.Render(); got != ref {
				t.Fatalf("shards=%d round=%d: fleet output diverges from batch (%d vs %d bytes)",
					shards, round, len(got), len(ref))
			}
		}
		if err := f.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

// TestFleetKillRestartByteIdentity: shards die and revive under
// traffic; the merged output still matches batch exactly and no
// acknowledged job is dropped.
func TestFleetKillRestartByteIdentity(t *testing.T) {
	jobs := testJobs(t, 16)
	ref := batchRender(t, jobs)
	f, err := New(Config{Shards: 4, CacheDir: t.TempDir(), Seed: 7, ProbeEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	done := make(chan *Result, 1)
	go func() { done <- f.Run(context.Background(), jobs) }()

	rng := rand.New(rand.NewSource(7))
	killed := 0
	for {
		select {
		case res := <-done:
			if killed == 0 {
				t.Log("run finished before any kill landed; rerunning is still a valid check")
			}
			if err := res.Err(); err != nil {
				t.Fatalf("kill/restart run failed: %v", err)
			}
			if got := res.Render(); got != ref {
				t.Fatalf("kill/restart output diverges from batch (%d vs %d bytes)", len(got), len(ref))
			}
			st := f.StatsSnapshot()
			if st.Kills != uint64(killed) {
				t.Fatalf("kills recorded %d, performed %d", st.Kills, killed)
			}
			return
		default:
		}
		s := rng.Intn(4)
		f.KillShard(s)
		killed++
		time.Sleep(8 * time.Millisecond)
		if err := f.RestartShard(s); err != nil {
			t.Fatal(err)
		}
		time.Sleep(8 * time.Millisecond)
	}
}

// TestFleetTotalOutageRecovery: every shard dies at once mid-run; the
// run parks, revived shards drain it, and the bytes still match.
func TestFleetTotalOutageRecovery(t *testing.T) {
	jobs := testJobs(t, 12)
	ref := batchRender(t, jobs)
	f, err := New(Config{Shards: 3, Seed: 3, ProbeEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	done := make(chan *Result, 1)
	go func() { done <- f.Run(context.Background(), jobs) }()
	time.Sleep(5 * time.Millisecond)
	for i := 0; i < 3; i++ {
		f.KillShard(i)
	}
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if err := f.RestartShard(i); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case res := <-done:
		if err := res.Err(); err != nil {
			t.Fatalf("post-outage run failed: %v", err)
		}
		if got := res.Render(); got != ref {
			t.Fatal("post-outage output diverges from batch")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run did not recover from total outage")
	}
}

// flakyTransport fails each job's first failN executions with an
// attributed error, then delegates to the real local transport.
type flakyTransport struct {
	real  Transport
	failN int
	mu    sync.Mutex
	seen  map[string]int
}

func (t *flakyTransport) Analyze(ctx context.Context, job Job) (*report.Report, error) {
	t.mu.Lock()
	t.seen[job.Name]++
	n := t.seen[job.Name]
	t.mu.Unlock()
	if n <= t.failN {
		return nil, fmt.Errorf("transient failure %d for %s", n, job.Name)
	}
	return t.real.Analyze(ctx, job)
}

func (t *flakyTransport) Probe(ctx context.Context) error { return nil }

func (t *flakyTransport) Close() error { return t.real.Close() }

// TestFleetRetriesTransientFailures: jobs that fail twice then succeed
// complete within the default retry budget, byte-identically.
func TestFleetRetriesTransientFailures(t *testing.T) {
	jobs := testJobs(t, 6)
	ref := batchRender(t, jobs)
	shared := &flakyTransport{failN: 2, seen: map[string]int{}}
	f, err := New(Config{
		Shards:     2,
		Seed:       11,
		RetryBase:  time.Millisecond,
		RetryMax:   4 * time.Millisecond,
		HedgeAfter: -1, // isolate the retry path from hedging
		NewTransport: func(shard int, tier *VerdictTier) (Transport, error) {
			real, err := newLocalTransport(tier)
			if err != nil {
				return nil, err
			}
			shared.real = real
			return shared, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res := f.Run(context.Background(), jobs)
	if err := res.Err(); err != nil {
		t.Fatalf("transient failures exhausted the retry budget: %v", err)
	}
	if res.Render() != ref {
		t.Fatal("retried run diverges from batch")
	}
	if st := f.StatsSnapshot(); st.Retries < uint64(2*len(jobs)) {
		t.Fatalf("expected >= %d retries, got %d", 2*len(jobs), st.Retries)
	}
}

// TestFleetRetryBudgetExhaustion: a job that always fails surfaces its
// error after MaxRetries+1 attempts without poisoning its siblings.
func TestFleetRetryBudgetExhaustion(t *testing.T) {
	jobs := testJobs(t, 4)
	poison := jobs[5].Name
	var attempts int
	var mu sync.Mutex
	f, err := New(Config{
		Shards:     2,
		MaxRetries: 2,
		RetryBase:  time.Millisecond,
		RetryMax:   4 * time.Millisecond,
		HedgeAfter: -1,
		NewTransport: func(shard int, tier *VerdictTier) (Transport, error) {
			real, err := newLocalTransport(tier)
			if err != nil {
				return nil, err
			}
			return transportFunc(func(ctx context.Context, job Job) (*report.Report, error) {
				if job.Name == poison {
					mu.Lock()
					attempts++
					mu.Unlock()
					return nil, fmt.Errorf("permanent failure")
				}
				return real.Analyze(ctx, job)
			}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res := f.Run(context.Background(), jobs)
	if res.Errs[5] == nil || !strings.Contains(res.Errs[5].Error(), "permanent failure") {
		t.Fatalf("poisoned job's error missing: %v", res.Errs[5])
	}
	for i, err := range res.Errs {
		if i != 5 && err != nil {
			t.Fatalf("sibling job %d poisoned: %v", i, err)
		}
	}
	mu.Lock()
	got := attempts
	mu.Unlock()
	if got != 3 { // initial + MaxRetries
		t.Fatalf("poisoned job attempted %d times, want 3", got)
	}
}

// transportFunc adapts a function to Transport for tests.
type transportFunc func(ctx context.Context, job Job) (*report.Report, error)

func (f transportFunc) Analyze(ctx context.Context, job Job) (*report.Report, error) {
	return f(ctx, job)
}
func (f transportFunc) Probe(ctx context.Context) error { return nil }

func (f transportFunc) Close() error { return nil }

// TestFleetHedgesStragglers: a shard that stalls on one job does not
// stall the run — the straggler is hedged onto an idle shard and the
// first completion wins.
func TestFleetHedgesStragglers(t *testing.T) {
	jobs := testJobs(t, 6)
	ref := batchRender(t, jobs)
	slow := jobs[0].Name
	var stallShard = -1
	var mu sync.Mutex
	f, err := New(Config{
		Shards:     3,
		Seed:       5,
		HedgeAfter: 25 * time.Millisecond,
		NewTransport: func(shard int, tier *VerdictTier) (Transport, error) {
			real, err := newLocalTransport(tier)
			if err != nil {
				return nil, err
			}
			return transportFunc(func(ctx context.Context, job Job) (*report.Report, error) {
				mu.Lock()
				stall := job.Name == slow && (stallShard < 0 || stallShard == shard)
				if stall {
					stallShard = shard
				}
				mu.Unlock()
				if stall {
					// The first shard to receive the slow job stalls on
					// it (bounded, ctx-aware) — only a hedge can finish
					// the job promptly.
					select {
					case <-time.After(700 * time.Millisecond):
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}
				return real.Analyze(ctx, job)
			}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	res := f.Run(context.Background(), jobs)
	if err := res.Err(); err != nil {
		t.Fatalf("hedged run failed: %v", err)
	}
	if res.Render() != ref {
		t.Fatal("hedged run diverges from batch")
	}
	if st := f.StatsSnapshot(); st.Hedges == 0 {
		t.Fatalf("stalled straggler was never hedged (took %v)", time.Since(start))
	}
}

// TestFleetBreakerEjectsAndRecovers: a dead shard's breaker trips via
// failed health probes (ejecting it from placement) and closes again
// through a real half-open probe after restart.
func TestFleetBreakerEjectsAndRecovers(t *testing.T) {
	f, err := New(Config{
		Shards:           3,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
		ProbeEvery:       5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	f.KillShard(1)
	if f.shardLive(1) {
		t.Fatal("killed shard still live for placement")
	}
	// The prober's failed health checks must trip the breaker (dead
	// flag alone already excludes the shard; the breaker is what keeps
	// it excluded across the restart until a probe succeeds).
	deadline := time.Now().Add(2 * time.Second)
	for f.Snapshot()["shard-1"].State != "open" {
		if time.Now().After(deadline) {
			t.Fatalf("dead shard's breaker never tripped: %+v", f.Snapshot()["shard-1"])
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := f.RestartShard(1); err != nil {
		t.Fatal(err)
	}
	for !f.shardLive(1) {
		if time.Now().After(deadline) {
			t.Fatal("restarted shard never recovered through half-open")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := f.Snapshot()["shard-1"]; st.State != "closed" {
		t.Fatalf("recovered shard's breaker is %q, want closed", st.State)
	}
	if st := f.StatsSnapshot(); st.Kills != 1 || st.Restarts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFleetSharedTierWarmsAcrossFleets: a second fleet over the same
// cache directory serves verdicts from the tier the first one flushed.
func TestFleetSharedTierWarmsAcrossFleets(t *testing.T) {
	dir := t.TempDir()
	jobs := testJobs(t, 4)

	f1, err := New(Config{Shards: 2, CacheDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := f1.Run(context.Background(), jobs)
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	ref := res.Render()
	if err := f1.Close(); err != nil { // flushes the tier
		t.Fatal(err)
	}

	f2, err := New(Config{Shards: 2, CacheDir: dir, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	res2 := f2.Run(context.Background(), jobs)
	if err := res2.Err(); err != nil {
		t.Fatal(err)
	}
	if res2.Render() != ref {
		t.Fatal("tier-warm run diverges from cold run")
	}
	if ts := f2.TierStats(); ts.VerdictHits == 0 {
		t.Fatalf("second fleet never hit the shared tier: %+v", ts)
	}
}

// TestFleetRunCancellation: canceling Run's context aborts promptly;
// undone jobs carry the context error, finished ones keep reports.
func TestFleetRunCancellation(t *testing.T) {
	jobs := testJobs(t, 4)
	block := make(chan struct{})
	f, err := New(Config{
		Shards:     2,
		HedgeAfter: -1,
		NewTransport: func(shard int, tier *VerdictTier) (Transport, error) {
			return transportFunc(func(ctx context.Context, job Job) (*report.Report, error) {
				select {
				case <-block:
					return report.New(), nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res := f.Run(ctx, jobs)
	hasErr := false
	for _, e := range res.Errs {
		if e != nil {
			hasErr = true
		}
	}
	if !hasErr {
		t.Fatal("canceled run reported no errors")
	}
	close(block)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
