package fleet

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"deepmc/internal/report"
)

// The run scheduler: per-shard FIFO queues with work-stealing, bounded
// retry with jittered backoff, and first-completion-wins hedging.
//
// Invariants:
//
//   - A task is in exactly one of: queued (on some shard's queue),
//     inflight (one or more executions running), backoff (an AfterFunc
//     will requeue it), or done.  Hedges relax "one execution": a task
//     may be queued *and* inflight, or inflight twice — duplicates are
//     harmless because analysis is deterministic and completion is
//     first-wins.
//   - remaining counts undone tasks; it hits zero exactly once per
//     task regardless of how many executions race to complete it.
//   - Requeues caused by shard death are free: the shard failed, not
//     the task, so they never count against the retry budget.

// taskState tracks one job through the run.
type taskState struct {
	queued   bool      // sitting on some shard's queue
	inflight int       // running executions (hedges may make this 2)
	retries  int       // attributed failures so far
	hedges   int       // hedge copies issued
	started  time.Time // earliest still-running execution's start
	done     bool
}

// run is one Run invocation's mutable state.
type run struct {
	f    *Fleet
	jobs []Job

	mu        sync.Mutex
	cond      *sync.Cond
	queues    [][]int // per-shard FIFO of task indices
	tasks     []taskState
	reports   []*report.Report
	errs      []error
	remaining int
	aborted   bool
	abortErr  error
	rng       *rand.Rand // backoff jitter; guarded by mu

	done     chan struct{} // closed when the run ends (complete or abort)
	doneOnce sync.Once
}

func newRun(f *Fleet, jobs []Job) *run {
	r := &run{
		f:         f,
		jobs:      jobs,
		queues:    make([][]int, len(f.shards)),
		tasks:     make([]taskState, len(jobs)),
		reports:   make([]*report.Report, len(jobs)),
		errs:      make([]error, len(jobs)),
		remaining: len(jobs),
		rng:       rand.New(rand.NewSource(f.cfg.Seed + 0x5eed)),
		done:      make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// place performs initial ring placement of every task, skipping dead
// and breaker-ejected shards.
func (r *run) place() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, j := range r.jobs {
		s := r.f.ring.ownerLive(j.Name, r.f.shardLive)
		r.queues[s] = append(r.queues[s], i)
		r.tasks[i].queued = true
	}
	r.cond.Broadcast()
}

// next blocks until shard has a task to run (its own queue's front, or
// a steal from the back of the longest other queue), the run finishes,
// or the shard's context dies.  ok=false means the worker should exit.
//
// A shard whose breaker is tripped parks instead of pulling: against
// an HTTP shard whose process died, pulling would spin every queued
// job through a connection failure.  The prober wakes the run each
// tick, so a recovered breaker (half-open probe success) resumes the
// worker promptly.
func (r *run) next(shard int, shardCtx context.Context) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.remaining == 0 || r.aborted || shardCtx.Err() != nil {
			return 0, false
		}
		if !r.f.breakers.Tripped(shardID(shard)) {
			// Own queue first: preserves placement locality.
			if q := r.queues[shard]; len(q) > 0 {
				idx := q[0]
				r.queues[shard] = q[1:]
				r.startLocked(idx)
				return idx, true
			}
			// Steal from the back of the longest queue (including dead
			// shards' queues — stealing is what drains them).
			victim, best := -1, 0
			for s, q := range r.queues {
				if s != shard && len(q) > best {
					victim, best = s, len(q)
				}
			}
			if victim >= 0 {
				q := r.queues[victim]
				idx := q[len(q)-1]
				r.queues[victim] = q[:len(q)-1]
				r.f.stats.Steals.Add(1)
				r.startLocked(idx)
				return idx, true
			}
		}
		r.cond.Wait()
	}
}

func (r *run) startLocked(idx int) {
	t := &r.tasks[idx]
	t.queued = false
	t.inflight++
	if t.inflight == 1 {
		t.started = time.Now()
	}
}

// complete records a successful execution.  First completion wins;
// late duplicates (hedges, or a racing steal) are dropped on the floor
// because every execution of the same job yields identical bytes.
func (r *run) complete(idx int, rep *report.Report) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &r.tasks[idx]
	t.inflight--
	if t.done {
		return
	}
	t.done = true
	r.reports[idx] = rep
	r.remaining--
	r.f.stats.Completed.Add(1)
	if r.remaining == 0 {
		r.finishLocked()
	}
	r.cond.Broadcast()
}

// finishLocked signals run end: in-flight duplicate executions (hedges,
// work on since-revived shards) are canceled rather than awaited.
func (r *run) finishLocked() {
	r.doneOnce.Do(func() { close(r.done) })
}

// drop discards an execution whose run ended underneath it.
func (r *run) drop(idx int) {
	r.mu.Lock()
	r.tasks[idx].inflight--
	r.mu.Unlock()
}

// ended reports whether the run is over (all tasks done, or aborted).
func (r *run) ended() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// fail records an attributed failure: the shard was healthy but the
// job errored.  Within budget the task is requeued after a jittered
// exponential backoff; past it the error becomes the task's outcome.
func (r *run) fail(idx int, err error) { r.failAfter(idx, err, 0) }

// failAfter is fail with an optional server-directed delay: a 429/503
// Retry-After overrides the jittered backoff (after > 0), because the
// server knows its own queue better than our jitter does.
func (r *run) failAfter(idx int, err error, after time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &r.tasks[idx]
	t.inflight--
	if t.done {
		return
	}
	if t.retries >= r.f.cfg.MaxRetries {
		t.done = true
		r.errs[idx] = err
		r.remaining--
		if r.remaining == 0 {
			r.finishLocked()
		}
		r.cond.Broadcast()
		return
	}
	t.retries++
	r.f.stats.Retries.Add(1)
	d := after
	if d <= 0 {
		d = r.backoffLocked(t.retries)
	}
	if t.inflight > 0 || t.queued {
		// A hedge copy is still live; let it carry the task.
		return
	}
	time.AfterFunc(d, func() { r.requeue(idx) })
}

// failTerminal records an authoritative rejection (a 4xx): the job
// itself is bad, no shard will judge it differently, so the error is
// the outcome immediately — no retry budget spent, no breaker fed.
func (r *run) failTerminal(idx int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &r.tasks[idx]
	t.inflight--
	if t.done {
		return
	}
	t.done = true
	r.errs[idx] = err
	r.remaining--
	if r.remaining == 0 {
		r.finishLocked()
	}
	r.cond.Broadcast()
}

// failNet records an execution lost to a connection-class (or
// corrupt-body) wire failure.  Like failDead the requeue is free —
// the wire failed, not the job — but it waits a beat: an immediate
// requeue against a just-died shard process would cycle through
// another instant connection failure before the breaker trips.
func (r *run) failNet(idx int, delay time.Duration) {
	r.mu.Lock()
	t := &r.tasks[idx]
	t.inflight--
	done, live := t.done, t.inflight > 0 || t.queued
	r.mu.Unlock()
	if done || live {
		return
	}
	time.AfterFunc(delay, func() { r.requeue(idx) })
}

// failDead records an execution lost to shard death.  The shard
// failed, not the task: requeue immediately, outside the retry budget.
func (r *run) failDead(idx int) {
	r.mu.Lock()
	t := &r.tasks[idx]
	t.inflight--
	done, live := t.done, t.inflight > 0 || t.queued
	r.mu.Unlock()
	if done || live {
		return
	}
	r.f.stats.Requeues.Add(1)
	r.f.stats.Discarded.Add(1)
	r.requeue(idx)
}

// requeue puts a not-done task back on the shortest live queue.
func (r *run) requeue(idx int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &r.tasks[idx]
	if t.done || t.queued {
		return
	}
	s := r.shortestLiveLocked()
	r.queues[s] = append(r.queues[s], idx)
	t.queued = true
	r.cond.Broadcast()
}

// hedge issues a duplicate execution of a straggling task onto an idle
// live shard's queue.
func (r *run) hedge(idx, shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &r.tasks[idx]
	if t.done || t.queued || t.inflight == 0 || t.hedges >= 2 {
		return
	}
	t.hedges++
	r.f.stats.Hedges.Add(1)
	r.queues[shard] = append(r.queues[shard], idx)
	t.queued = true
	r.cond.Broadcast()
}

// stragglers returns tasks inflight longer than age with no queued
// copy, for the hedging monitor.
func (r *run) stragglers(age time.Duration) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int
	now := time.Now()
	for i := range r.tasks {
		t := &r.tasks[i]
		if !t.done && !t.queued && t.inflight > 0 && t.hedges < 2 && now.Sub(t.started) >= age {
			out = append(out, i)
		}
	}
	return out
}

// queueEmpty reports whether a shard's queue is drained (hedging only
// targets shards with nothing of their own to do).
func (r *run) queueEmpty(shard int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queues[shard]) == 0
}

func (r *run) shortestLiveLocked() int {
	best, bestLen := -1, -1
	for s := range r.queues {
		if !r.f.shardLive(s) {
			continue
		}
		if bestLen < 0 || len(r.queues[s]) < bestLen {
			best, bestLen = s, len(r.queues[s])
		}
	}
	if best < 0 {
		// Every shard is dead or ejected right now.  Park the task on
		// queue 0: a revived or recovered shard (or any survivor's
		// steal) will drain it.
		best = 0
	}
	return best
}

// backoffLocked computes the jittered exponential delay for the n-th
// retry: base·2^(n-1) clamped to max, with ±50% jitter so synchronized
// failures do not retry in lockstep.
func (r *run) backoffLocked(n int) time.Duration {
	d := r.f.cfg.RetryBase << uint(n-1)
	if d > r.f.cfg.RetryMax || d <= 0 {
		d = r.f.cfg.RetryMax
	}
	half := int64(d) / 2
	return time.Duration(half + r.rng.Int63n(half+1))
}

// wait blocks until every task is done or ctx ends.  On ctx end the
// run aborts: workers drain out and undone tasks report ctx's error.
func (r *run) wait(ctx context.Context) {
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			r.mu.Lock()
			r.aborted = true
			r.abortErr = ctx.Err()
			r.cond.Broadcast()
			r.mu.Unlock()
		case <-stop:
		}
	}()
	r.mu.Lock()
	for r.remaining > 0 && !r.aborted {
		r.cond.Wait()
	}
	if r.aborted {
		// Mark undone tasks terminally failed so late completions from
		// still-running executions are dropped instead of racing the
		// caller's read of the result slices.
		for i := range r.tasks {
			if !r.tasks[i].done {
				r.tasks[i].done = true
				r.errs[i] = r.abortErr
			}
		}
		r.remaining = 0
		r.finishLocked()
	}
	r.mu.Unlock()
	close(stop)
}

// wake nudges every parked worker (shard death/revival changes what
// next() can return).
func (r *run) wake() {
	r.mu.Lock()
	r.cond.Broadcast()
	r.mu.Unlock()
}
