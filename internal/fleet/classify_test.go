package fleet

import (
	"context"
	"errors"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

// timeoutNetErr mimics a net.Error timeout (e.g. a dial or read
// deadline expiring inside the http client).
type timeoutNetErr struct{}

func (timeoutNetErr) Error() string   { return "i/o timeout" }
func (timeoutNetErr) Timeout() bool   { return true }
func (timeoutNetErr) Temporary() bool { return true }

var _ net.Error = timeoutNetErr{}

// TestClassifyTransportErr is the satellite table: every way a wire
// can fail without an HTTP status maps to the connection class, whose
// requeue is free — the job was never judged.
func TestClassifyTransportErr(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"conn refused", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}},
		{"conn reset", &net.OpError{Op: "read", Err: syscall.ECONNRESET}},
		{"context deadline", context.DeadlineExceeded},
		{"eof", io.EOF},
		{"unexpected eof (truncated body)", io.ErrUnexpectedEOF},
		{"net timeout", timeoutNetErr{}},
		{"unrecognized", errors.New("weird proxy hiccup")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := classifyTransportErr(tc.err)
			var ne *NetError
			if !errors.As(err, &ne) {
				t.Fatalf("classifyTransportErr(%v) = %T, want *NetError", tc.err, err)
			}
			if ne.Class != ErrConn {
				t.Fatalf("classifyTransportErr(%v).Class = %v, want ErrConn", tc.err, ne.Class)
			}
		})
	}
}

// TestClassifyStatus is the satellite table for responses that did
// arrive: 4xx terminal, 429 throttle honoring Retry-After, 5xx
// breaker-fed server error.
func TestClassifyStatus(t *testing.T) {
	cases := []struct {
		name       string
		status     int
		retryAfter string
		class      ErrClass
		after      time.Duration
	}{
		{"400 bad request", 400, "", ErrTerminal, 0},
		{"404 not found", 404, "", ErrTerminal, 0},
		{"422 unprocessable", 422, "", ErrTerminal, 0},
		{"429 shed", 429, "2", ErrThrottle, 2 * time.Second},
		{"429 shed no hint", 429, "", ErrThrottle, 0},
		{"500 internal", 500, "", ErrServer, 0},
		{"502 bad gateway", 502, "", ErrServer, 0},
		{"503 with retry-after", 503, "1", ErrServer, time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := classifyStatus(tc.status, tc.retryAfter, []byte("detail"))
			var ne *NetError
			if !errors.As(err, &ne) {
				t.Fatalf("classifyStatus(%d) = %T, want *NetError", tc.status, err)
			}
			if ne.Class != tc.class {
				t.Fatalf("classifyStatus(%d).Class = %v, want %v", tc.status, ne.Class, tc.class)
			}
			if ne.RetryAfter != tc.after {
				t.Fatalf("classifyStatus(%d).RetryAfter = %v, want %v", tc.status, ne.RetryAfter, tc.after)
			}
			if ne.Status != tc.status {
				t.Fatalf("classifyStatus(%d).Status = %d", tc.status, ne.Status)
			}
		})
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"0", 0},
		{"3", 3 * time.Second},
		{"-1", 0},
		{"garbage", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0}, // http-date form: ignored, backoff applies
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Fatalf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
