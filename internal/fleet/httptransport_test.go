package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"deepmc/internal/anacache"
	"deepmc/internal/core"
	"deepmc/internal/corpus"
	"deepmc/internal/ir"
	"deepmc/internal/report"
	"deepmc/internal/serve"
)

// httpJobs is testJobs in wire form: corpus jobs carry their corpus
// name, generated apps carry printed PIR source — and the local Module
// (the batch reference) is parsed from those exact bytes, so reference
// and remote analyses see identical text.
func httpJobs(t *testing.T, n int) []Job {
	t.Helper()
	var jobs []Job
	for _, p := range corpus.All() {
		m, err := p.Module()
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{
			Name: p.Name, Module: m, Corpus: p.Name,
			Config: core.Config{Model: p.Model.String(), Workers: 1},
		})
	}
	for i := 0; i < n; i++ {
		// Underscored names: hyphens do not survive the PIR print→parse
		// round trip that puts these jobs on the wire.
		name := fmt.Sprintf("app_%02d", i)
		src := ir.Print(core.GenerateApp(core.AppSpec{Name: name, Funcs: 10 + i%7, CallDepth: 2, Seed: int64(1000 + i)}))
		m, err := ir.Parse(src)
		if err != nil {
			t.Fatalf("reparse %s: %v", name, err)
		}
		jobs = append(jobs, Job{
			Name: name, Module: m, Source: src,
			Config: core.Config{Model: "epoch", AllFunctions: true, Workers: 1},
		})
	}
	return jobs
}

// startShardServer runs an in-process serve daemon on a loopback
// listener — the package-test stand-in for a real shard process (the
// net-fleet gate spawns genuine processes).
func startShardServer(t *testing.T, tierURL string) (*serve.Server, string) {
	t.Helper()
	s, err := serve.NewServer(serve.Config{TierURL: tierURL, DrainTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return s, "http://" + l.Addr().String()
}

func httpFleet(t *testing.T, urls []string, mutate func(*Config)) *Fleet {
	t.Helper()
	cfg := Config{
		Shards: len(urls),
		Seed:   7,
		NewTransport: func(shard int, _ *VerdictTier) (Transport, error) {
			return NewHTTPTransport(urls[shard], HTTPOptions{RequestTimeout: 20 * time.Second}), nil
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestHTTPFleetMatchesBatch: jobs travel over real HTTP to in-process
// shard daemons and the merged output is byte-identical to batch.
func TestHTTPFleetMatchesBatch(t *testing.T) {
	jobs := httpJobs(t, 6)
	ref := batchRender(t, jobs)
	urls := make([]string, 3)
	for i := range urls {
		_, urls[i] = startShardServer(t, "")
	}
	f := httpFleet(t, urls, nil)
	res := f.Run(context.Background(), jobs)
	if err := res.Err(); err != nil {
		t.Fatalf("http fleet failed: %v", err)
	}
	if res.Render() != ref {
		t.Fatal("http fleet output diverges from batch")
	}
}

// TestHTTPTransportRefusesModuleOnlyJobs: a job without its wire form
// is a terminal error, not a silent re-print (which could shift line
// numbers and corrupt byte-identity).
func TestHTTPTransportRefusesModuleOnlyJobs(t *testing.T) {
	_, url := startShardServer(t, "")
	tr := NewHTTPTransport(url, HTTPOptions{})
	defer tr.Close()
	jobs := testJobs(t, 1) // Module only, no Source/Corpus
	_, err := tr.Analyze(context.Background(), jobs[len(jobs)-1])
	var ne *NetError
	if !errors.As(err, &ne) || ne.Class != ErrTerminal {
		t.Fatalf("want terminal NetError, got %v", err)
	}
}

// truncateOnce forwards to a real shard daemon but kills the
// connection halfway through the first /analyze response body — after
// the full Content-Length and checksum headers have been sent.  The
// wire-level shape of a shard process dying mid-response.
type truncateOnce struct {
	inner http.Handler
	mu    sync.Mutex
	used  bool
}

func (h *truncateOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	first := !h.used && r.URL.Path == "/analyze"
	if first {
		h.used = true
	}
	h.mu.Unlock()
	if !first {
		h.inner.ServeHTTP(w, r)
		return
	}
	rec := httptest.NewRecorder()
	h.inner.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	hj, ok := w.(http.Hijacker)
	if !ok {
		h.inner.ServeHTTP(w, r)
		return
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	fmt.Fprintf(buf, "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: %d\r\n%s: %s\r\nX-Deepmc-Exit: 0\r\nX-Deepmc-Partial: false\r\n\r\n",
		len(body), anacache.SumHeader, anacache.BodySum(body))
	buf.Write(body[:len(body)/2])
	buf.Flush()
}

// TestShardDeathMidResponseRequeues: a response truncated mid-body is
// discarded and the job re-runs — never trusted — exactly like a
// killed in-process shard (the satellite regression for partial
// hardening over the wire).
func TestShardDeathMidResponseRequeues(t *testing.T) {
	jobs := httpJobs(t, 1)
	ref := batchRender(t, jobs)

	s, err := serve.NewServer(serve.Config{DrainTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(&truncateOnce{inner: s.Handler()})
	defer front.Close()
	defer s.Close()

	f := httpFleet(t, []string{front.URL}, func(c *Config) {
		c.RetryBase = 2 * time.Millisecond
	})
	res := f.Run(context.Background(), jobs)
	if err := res.Err(); err != nil {
		t.Fatalf("truncated first response should requeue, not fail: %v", err)
	}
	if res.Render() != ref {
		t.Fatal("output after mid-response truncation diverges from batch")
	}
	st := res.Stats
	if st.NetRequeues == 0 {
		t.Fatalf("expected a free net requeue, stats = %+v", st)
	}
	if st.Retries != 0 {
		t.Fatalf("a wire truncation must not consume the retry budget, stats = %+v", st)
	}
}

// corruptTierGETs flips a byte in every tier GET body (re-framing the
// checksum-relevant headers untouched), so the shard's RemoteBacking
// must reject each read.
func corruptTierGETs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			next.ServeHTTP(w, r)
			return
		}
		rec := httptest.NewRecorder()
		next.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		if rec.Code == http.StatusOK && len(body) > 0 {
			body[len(body)/2] ^= 0xff
		}
		h := w.Header()
		for k, vs := range rec.Header() {
			h[k] = vs
		}
		h.Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(rec.Code)
		w.Write(body)
	})
}

// TestTierWireCorruptionDegradesToRecompute: flipped bytes in tier GET
// responses make every tier read a counted cache miss; the fleet
// recomputes and stays byte-identical to batch.
func TestTierWireCorruptionDegradesToRecompute(t *testing.T) {
	jobs := httpJobs(t, 3)
	ref := batchRender(t, jobs)

	tier, err := NewVerdictTier(t.TempDir(), 0, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	tierSrv := httptest.NewServer(corruptTierGETs(anacache.BackingHandler(tier)))
	defer tierSrv.Close()

	run := func() (*Result, []*serve.Server) {
		urls := make([]string, 2)
		servers := make([]*serve.Server, 2)
		for i := range urls {
			servers[i], urls[i] = startShardServer(t, tierSrv.URL)
		}
		f := httpFleet(t, urls, nil)
		return f.Run(context.Background(), jobs), servers
	}

	// Round 1 warms the tier (PUTs are clean; the empty tier's GETs
	// are 404 misses).  Round 2's fresh shard caches must read through
	// — and reject — the corrupted GET bodies, then recompute.
	res1, _ := run()
	if err := res1.Err(); err != nil {
		t.Fatal(err)
	}
	res2, servers := run()
	if err := res2.Err(); err != nil {
		t.Fatal(err)
	}
	if res1.Render() != ref || res2.Render() != ref {
		t.Fatal("tier corruption leaked into the merged reports")
	}
	var corrupt, gets uint64
	for _, s := range servers {
		st := s.TierStats()
		corrupt += st.Corrupt
		gets += st.Gets
	}
	if gets == 0 {
		t.Fatal("round 2 never consulted the tier — the test exercised nothing")
	}
	if corrupt == 0 {
		t.Fatalf("corrupted tier bodies were not counted: gets=%d corrupt=%d", gets, corrupt)
	}
}

// TestThrottleHonorsRetryAfter: 429s delay by the server's Retry-After
// (not the default backoff), consume retry budget, and never feed the
// breaker.
func TestThrottleHonorsRetryAfter(t *testing.T) {
	jobs := testJobs(t, 0)[:1]
	ref := batchRender(t, jobs)
	const serverDelay = 120 * time.Millisecond
	var calls int
	var mu sync.Mutex
	f, err := New(Config{
		Shards: 1, Seed: 3,
		MaxRetries: 3,
		RetryBase:  time.Millisecond, RetryMax: 2 * time.Millisecond, // default backoff would be ~instant
		HedgeAfter: -1,
		NewTransport: func(shard int, tier *VerdictTier) (Transport, error) {
			real, err := newLocalTransport(tier)
			if err != nil {
				return nil, err
			}
			return transportFunc(func(ctx context.Context, job Job) (*report.Report, error) {
				mu.Lock()
				calls++
				n := calls
				mu.Unlock()
				if n <= 2 {
					return nil, &NetError{Class: ErrThrottle, Status: 429, RetryAfter: serverDelay, Msg: "queue full"}
				}
				return real.Analyze(ctx, job)
			}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	res := f.Run(context.Background(), jobs)
	elapsed := time.Since(start)
	if err := res.Err(); err != nil {
		t.Fatalf("throttled job should eventually run: %v", err)
	}
	if res.Render() != ref {
		t.Fatal("throttled run diverges from batch")
	}
	if elapsed < 2*serverDelay {
		t.Fatalf("retries ignored Retry-After: elapsed %v < %v", elapsed, 2*serverDelay)
	}
	st := res.Stats
	if st.Throttled != 2 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want throttled=2 retries=2", st)
	}
	if f.breakers.Tripped(shardID(0)) {
		t.Fatal("shedding fed the breaker")
	}
}

// TestTerminalErrorFailsImmediately: a 4xx is the job's outcome with
// no retries and no breaker damage; the rest of the batch completes.
func TestTerminalErrorFailsImmediately(t *testing.T) {
	_, url := startShardServer(t, "")
	f := httpFleet(t, []string{url}, nil)
	wire := httpJobs(t, 2)
	// The poison job has a Module but no Source/Corpus: the HTTP
	// transport rejects it terminally; wire-shaped jobs run normally.
	poison := testJobs(t, 0)[:1]
	poison[0].Name = "poison"
	jobs := append(poison, wire...)
	res := f.Run(context.Background(), jobs)
	if res.Errs[0] == nil {
		t.Fatal("poison job should fail terminally")
	}
	for i := 1; i < len(jobs); i++ {
		if res.Errs[i] != nil {
			t.Fatalf("job %s failed: %v", jobs[i].Name, res.Errs[i])
		}
	}
	if st := res.Stats; st.Retries != 0 {
		t.Fatalf("terminal failure consumed retries: %+v", st)
	}
}
