package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"deepmc/internal/anacache"
	"deepmc/internal/report"
)

// HTTPTransport drives one `deepmc serve -shard` daemon as a fleet
// shard.  The deployment shape: every shard host runs a daemon with a
// memory-only local cache attached (via -tier) to the coordinator's
// verdict tier; the coordinator holds only this client.
//
// The wire discipline mirrors the in-process trust model exactly:
//
//   - Every analyze response is verified end to end — Content-Length
//     framing, X-Deepmc-Sum body checksum, JSON parse — before a
//     single byte is trusted.  A short or corrupt body is classified
//     ErrCorrupt and the job requeues for free, exactly like a report
//     from a killed in-process shard.
//   - A response flagged X-Deepmc-Partial is a degraded report (the
//     daemon hit its deadline or a breaker), not the batch answer;
//     byte-identity forbids trusting it, so it classifies ErrServer
//     and retries.
//   - Jobs travel as PIR source text (or a corpus name), so the shard
//     daemon parses exactly the bytes the coordinator's reference
//     analysis parsed — placement can move a job anywhere without
//     perturbing a line number.
type HTTPTransport struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	ownsHC  bool
}

// HTTPOptions tunes an HTTPTransport.
type HTTPOptions struct {
	// Client overrides the HTTP client (nil builds one from Dial).
	Client *http.Client
	// Dial overrides the dialer of the built client — the netfault
	// injector hooks in here.  Ignored when Client is set.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
	// RequestTimeout bounds each analyze round trip (default 30s).
	RequestTimeout time.Duration
	// DisableKeepAlives forces a fresh dial per request.  The chaos
	// gate sets it so every request draws its own netfault plan.
	DisableKeepAlives bool
}

// NewHTTPTransport builds a transport for the shard daemon at base
// (e.g. "http://10.0.0.3:7437").
func NewHTTPTransport(base string, opts HTTPOptions) *HTTPTransport {
	timeout := opts.RequestTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	hc := opts.Client
	owns := false
	if hc == nil {
		tr := &http.Transport{
			DialContext:       opts.Dial,
			DisableKeepAlives: opts.DisableKeepAlives,
			MaxIdleConns:      8,
			IdleConnTimeout:   30 * time.Second,
		}
		hc = &http.Client{Transport: tr}
		owns = true
	}
	return &HTTPTransport{base: strings.TrimRight(base, "/"), hc: hc, timeout: timeout, ownsHC: owns}
}

// Analyze implements Transport over POST /analyze.
func (t *HTTPTransport) Analyze(ctx context.Context, job Job) (*report.Report, error) {
	wreq, err := wireRequest(job)
	if err != nil {
		return nil, &NetError{Class: ErrTerminal, Msg: err.Error()}
	}
	payload, err := json.Marshal(wreq)
	if err != nil {
		return nil, &NetError{Class: ErrTerminal, Msg: "marshal request: " + err.Error()}
	}
	rctx, cancel := context.WithTimeout(ctx, t.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, t.base+"/analyze", bytes.NewReader(payload))
	if err != nil {
		return nil, &NetError{Class: ErrTerminal, Msg: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil && rctx.Err() != context.DeadlineExceeded {
			// The shard context died (kill, run end) — surface that, not
			// a transport class, so the worker's own classification runs.
			return nil, ctx.Err()
		}
		return nil, classifyTransportErr(err)
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if rerr != nil {
		// Died mid-body: a reset or a shard kill between header and
		// payload.  Connection-class, never trusted.
		return nil, classifyTransportErr(fmt.Errorf("reading response: %w", rerr))
	}
	if resp.StatusCode != http.StatusOK {
		return nil, classifyStatus(resp.StatusCode, resp.Header.Get("Retry-After"), body)
	}
	if resp.ContentLength >= 0 && int64(len(body)) != resp.ContentLength {
		return nil, &NetError{Class: ErrCorrupt,
			Msg: fmt.Sprintf("body length %d != declared %d", len(body), resp.ContentLength)}
	}
	if sum := resp.Header.Get(anacache.SumHeader); sum == "" || sum != anacache.BodySum(body) {
		return nil, &NetError{Class: ErrCorrupt, Msg: "report checksum mismatch"}
	}
	if resp.Header.Get("X-Deepmc-Partial") == "true" {
		return nil, &NetError{Class: ErrServer, Status: resp.StatusCode,
			Msg: "shard returned a degraded partial report"}
	}
	rep, err := report.ParseJSON(body)
	if err != nil {
		return nil, &NetError{Class: ErrCorrupt, Msg: "unparseable report: " + err.Error()}
	}
	return rep, nil
}

// Probe implements Transport: a cheap readiness check.  A draining or
// dead daemon probes unhealthy, which is what trips (and un-trips)
// the shard's breaker.
func (t *HTTPTransport) Probe(ctx context.Context) error {
	pctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, t.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: shard readyz: %d", resp.StatusCode)
	}
	return nil
}

// Close releases the transport's idle connections.
func (t *HTTPTransport) Close() error {
	if t.ownsHC {
		if tr, ok := t.hc.Transport.(*http.Transport); ok {
			tr.CloseIdleConnections()
		}
	}
	return nil
}

// wireRequest shapes a Job for POST /analyze.  Jobs must carry Source
// or Corpus: serializing a live module by printing it could shift line
// numbers and break fleet==batch byte-identity, so the transport
// refuses to guess.
func wireRequest(job Job) (map[string]any, error) {
	if job.Source == "" && job.Corpus == "" {
		return nil, fmt.Errorf("job %q has neither Source nor Corpus: the HTTP transport needs the original text", job.Name)
	}
	cfg := job.Config
	req := map[string]any{}
	if job.Source != "" {
		req["source"] = job.Source
	} else {
		req["corpus"] = job.Corpus
	}
	if cfg.Model != "" {
		req["model"] = cfg.Model
	}
	if cfg.PModel != "" {
		req["pmodel"] = cfg.PModel
	}
	if cfg.AllFunctions {
		req["all_functions"] = true
	}
	if len(cfg.Passes) > 0 {
		req["passes"] = cfg.Passes
	}
	if len(cfg.DisablePasses) > 0 {
		req["disable_passes"] = cfg.DisablePasses
	}
	if cfg.MaxTraceEntries > 0 {
		req["max_trace_entries"] = cfg.MaxTraceEntries
	}
	if cfg.Workers > 0 {
		req["workers"] = cfg.Workers
	}
	return req, nil
}
