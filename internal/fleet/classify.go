package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"syscall"
	"time"
)

// Retry classification: every HTTP transport failure lands in exactly
// one class, and the class — not the error text — decides what the
// scheduler does with the job.
//
//	ErrConn      the shard (or the path to it) failed: refused, reset,
//	             timed out, or the response died mid-body.  The job is
//	             fine; requeue it for free (like an in-process shard
//	             death) and feed the shard's breaker.
//	ErrCorrupt   bytes arrived but failed verification (checksum,
//	             length framing, JSON parse).  Same handling as
//	             ErrConn — a corrupted report is never trusted — but
//	             counted separately: corruption is a different disease
//	             than disconnection.
//	ErrTerminal  the shard answered authoritatively that the job is
//	             bad (4xx).  Retrying elsewhere cannot help; the error
//	             becomes the job's outcome immediately.
//	ErrThrottle  429: the shard is shedding load.  Budgeted retry that
//	             honors the server's Retry-After instead of the
//	             default jittered backoff, and does NOT feed the
//	             breaker — shedding is the admission queue working,
//	             not the shard failing.
//	ErrServer    5xx/503: the shard errored on our job.  Breaker-fed
//	             budgeted retry with jittered backoff (or the server's
//	             Retry-After when it names one).
type ErrClass int

const (
	ErrConn ErrClass = iota
	ErrCorrupt
	ErrTerminal
	ErrThrottle
	ErrServer
)

// String names the class for logs and tests.
func (c ErrClass) String() string {
	switch c {
	case ErrConn:
		return "conn"
	case ErrCorrupt:
		return "corrupt"
	case ErrTerminal:
		return "terminal"
	case ErrThrottle:
		return "throttle"
	default:
		return "server"
	}
}

// NetError is a classified HTTP transport failure.
type NetError struct {
	Class      ErrClass
	Status     int           // HTTP status when one was received, else 0
	RetryAfter time.Duration // server-directed delay (429/503), else 0
	Msg        string
}

func (e *NetError) Error() string {
	if e.Status > 0 {
		return fmt.Sprintf("fleet: %s (%d): %s", e.Class, e.Status, e.Msg)
	}
	return fmt.Sprintf("fleet: %s: %s", e.Class, e.Msg)
}

// classifyTransportErr maps a Do/read error (no usable response) to a
// class.  Everything here is connection-shaped: refused, reset, timed
// out, or truncated — the remote never authoritatively judged the job.
func classifyTransportErr(err error) *NetError {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &NetError{Class: ErrConn, Msg: "request deadline exceeded: " + err.Error()}
	case errors.Is(err, syscall.ECONNREFUSED):
		return &NetError{Class: ErrConn, Msg: "connection refused: " + err.Error()}
	case errors.Is(err, syscall.ECONNRESET):
		return &NetError{Class: ErrConn, Msg: "connection reset: " + err.Error()}
	case errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, io.EOF):
		return &NetError{Class: ErrConn, Msg: "truncated response: " + err.Error()}
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return &NetError{Class: ErrConn, Msg: "i/o timeout: " + err.Error()}
	}
	// Unrecognized transport failures are still connection-class: the
	// job was never judged, so retrying it elsewhere is always safe
	// (analysis is deterministic and idempotent).
	return &NetError{Class: ErrConn, Msg: err.Error()}
}

// classifyStatus maps a non-200 HTTP response to a class.
func classifyStatus(status int, retryAfter string, body []byte) *NetError {
	msg := string(body)
	if len(msg) > 200 {
		msg = msg[:200]
	}
	switch {
	case status == http.StatusTooManyRequests:
		return &NetError{Class: ErrThrottle, Status: status, RetryAfter: parseRetryAfter(retryAfter), Msg: msg}
	case status >= 400 && status < 500:
		return &NetError{Class: ErrTerminal, Status: status, Msg: msg}
	default:
		return &NetError{Class: ErrServer, Status: status, RetryAfter: parseRetryAfter(retryAfter), Msg: msg}
	}
}

// parseRetryAfter reads a Retry-After header's delay-seconds form
// (the only form this fleet's servers emit); absent or unparseable
// yields 0, which falls back to the scheduler's jittered backoff.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
