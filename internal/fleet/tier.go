package fleet

import (
	"sync"
	"time"

	"deepmc/internal/anacache"
	"deepmc/internal/dsa"
	"deepmc/internal/report"
)

// VerdictTier is the fleet's shared content-addressed verdict store:
// one lazy anacache over a common directory, sitting behind every
// shard's local cache as its anacache.Backing.  Shards read through it
// on local misses (so a verdict computed anywhere warms everywhere)
// and write behind it on stores (the flusher goroutine batches the
// deferred disk writes, keeping shard hot paths off disk I/O).
//
// Loads are singleflight-coalesced per key: when several shards miss
// on the same fingerprint at once — the common case right after a
// popular component changes — only one disk read happens and the rest
// share its result.
type VerdictTier struct {
	shared *anacache.Cache

	mu       sync.Mutex
	inflight map[anacache.Key]*tierCall

	stop chan struct{}
	wg   sync.WaitGroup
}

type tierCall struct {
	done chan struct{}
	ws   []report.Warning
	ok   bool
}

// NewVerdictTier opens the shared tier over dir (lazy writes, flushed
// every flushEvery), bounded to cap disk entries when cap > 0.
func NewVerdictTier(dir string, cap int, flushEvery time.Duration) (*VerdictTier, error) {
	shared, err := anacache.NewLazy(dir)
	if err != nil {
		return nil, err
	}
	if cap > 0 {
		shared.SetDiskCap(cap)
	}
	t := &VerdictTier{
		shared:   shared,
		inflight: make(map[anacache.Key]*tierCall),
		stop:     make(chan struct{}),
	}
	if dir != "" && flushEvery > 0 {
		t.wg.Add(1)
		go t.flusher(flushEvery)
	}
	return t, nil
}

// Load implements anacache.Backing: a coalesced read of the shared
// tier.  Concurrent loads of the same key share one lookup.
func (t *VerdictTier) Load(k anacache.Key) ([]report.Warning, bool) {
	t.mu.Lock()
	if c, ok := t.inflight[k]; ok {
		t.mu.Unlock()
		<-c.done
		return c.ws, c.ok
	}
	c := &tierCall{done: make(chan struct{})}
	t.inflight[k] = c
	t.mu.Unlock()

	c.ws, c.ok = t.shared.LookupVerdicts(k)

	t.mu.Lock()
	delete(t.inflight, k)
	t.mu.Unlock()
	close(c.done)
	return c.ws, c.ok
}

// Store implements anacache.Backing: the write-behind half.  The
// shared cache is lazy, so this buffers in memory; the flusher (or
// Close) persists it.
func (t *VerdictTier) Store(k anacache.Key, ws []report.Warning, sum dsa.FuncSummary) {
	t.shared.StoreVerdicts(k, ws, sum)
}

// Stats exposes the shared cache's counters.
func (t *VerdictTier) Stats() anacache.Stats { return t.shared.Stats() }

// Close stops the flusher and performs a final flush so a restarted
// fleet warms from everything this one computed.
func (t *VerdictTier) Close() error {
	select {
	case <-t.stop:
	default:
		close(t.stop)
	}
	t.wg.Wait()
	_, err := t.shared.Flush()
	return err
}

func (t *VerdictTier) flusher(every time.Duration) {
	defer t.wg.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			t.shared.Flush()
		case <-t.stop:
			return
		}
	}
}
