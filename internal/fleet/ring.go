package fleet

import (
	"fmt"
	"sort"
)

// Consistent-hash placement: each shard owns Replicas virtual nodes on
// a 64-bit ring, and a job lands on the first virtual node at or after
// its name's hash.  Adding or removing a shard moves only the jobs in
// the arcs that shard's virtual nodes covered — restarts do not
// reshuffle the whole corpus, so shard-local caches stay warm across
// fleet resizes.
//
// The ring decides *initial* placement only.  Liveness is the
// scheduler's problem: a dead or breaker-ejected shard is skipped at
// placement time, and work already queued on a shard that dies is
// drained by stealing, not by re-hashing.

// ring maps job names to shard indices via virtual nodes.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// ringHash is FNV-1a followed by a 64-bit avalanche finalizer.  Raw
// FNV-1a clusters badly on strings that differ only in their trailing
// bytes (exactly what "shard-N/vnode-M" names are): the last byte is
// multiplied by the prime just once, so consecutive vnodes land in
// consecutive ring positions and a few shards end up owning huge arcs.
// The finalizer (Murmur3's fmix64) spreads those runs uniformly.
func ringHash(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// newRing builds the ring for shards shards with replicas virtual
// nodes each.
func newRing(shards, replicas int) *ring {
	r := &ring{points: make([]ringPoint, 0, shards*replicas)}
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  ringHash(fmt.Sprintf("shard-%d/vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// owner returns the shard owning name, ignoring liveness.
func (r *ring) owner(name string) int {
	return r.points[r.search(name)].shard
}

// ownerLive walks the ring clockwise from name's position and returns
// the first shard for which live reports true; if none does, it falls
// back to the raw owner (the scheduler will park the job until a shard
// revives or steals it).
func (r *ring) ownerLive(name string, live func(int) bool) int {
	start := r.search(name)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if live(p.shard) {
			return p.shard
		}
	}
	return r.points[start].shard
}

func (r *ring) search(name string) int {
	h := ringHash(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
