// Package fleet shards batch analysis across failure-independent
// workers behind a coordinator, turning the single-process batch path
// into the paper-scale deployment shape: N shards each holding a hot
// local cache, a shared content-addressed verdict tier underneath
// them, and a scheduler that survives shards dying mid-traffic.
//
// Placement is consistent-hash (package-local ring): a job's name
// picks its shard, so repeated runs land components on the same shard
// and its local cache stays hot.  Liveness is handled downstream of
// placement — dead or breaker-ejected shards are skipped for new
// placements, and work already queued on a shard that dies is drained
// by the other shards' work-stealing, not by re-hashing.
//
// Failure handling reuses the serve daemon's circuit-breaker state
// machine (serve.BreakerSet) keyed by shard: a shard that keeps
// failing work is ejected from routing, health probes exercise the
// half-open transition, and recovery closes the breaker.  Attributed
// job failures retry with jittered exponential backoff under a bounded
// budget; executions lost to shard death requeue immediately and for
// free (the shard failed, not the job).  Stragglers are hedged onto
// idle shards — duplicates are harmless because analysis is
// deterministic and completion is first-wins.
//
// The output contract is the whole point: Run's merged result is byte-
// identical to a single-node batch run at any shard count, with any
// kill/restart schedule, because per-job reports are deterministic
// (worker-count independent, warm==cold by the cache gate) and the
// merge is by declaration order, never completion order.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepmc/internal/anacache"
	"deepmc/internal/core"
	"deepmc/internal/ir"
	"deepmc/internal/report"
	"deepmc/internal/serve"
)

// Job is one unit of fleet work: a named module and its analysis
// configuration.  Name is the placement key — stable names keep shard
// caches hot across runs.
//
// Source/Corpus are the job's wire form for HTTP shards: the exact
// PIR text (or built-in corpus name) the module came from.  The HTTP
// transport refuses jobs without one — re-printing a live module
// could shift line numbers and silently break fleet==batch
// byte-identity, so the original bytes travel instead.  In-process
// transports ignore both and analyze Module directly.
type Job struct {
	Name   string
	Module *ir.Module
	Config core.Config
	Source string
	Corpus string
}

// Config tunes the fleet.  Zero values select the documented defaults.
type Config struct {
	// Shards is the number of failure-independent workers (default 4).
	Shards int
	// Replicas is the virtual nodes per shard on the hash ring
	// (default 16).
	Replicas int
	// CacheDir hosts the shared verdict tier; empty disables the disk
	// layer (shards still share the in-memory tier).
	CacheDir string
	// CacheCap bounds the tier's disk entries (0 = unbounded).
	CacheCap int
	// MaxRetries bounds attributed-failure retries per job (default 2;
	// negative disables retries).  Shard-death requeues are free.
	MaxRetries int
	// RetryBase/RetryMax bound the jittered exponential backoff
	// (defaults 5ms/250ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// HedgeAfter re-dispatches a task still running after this long to
	// an idle shard (default 500ms; negative disables hedging).
	HedgeAfter time.Duration
	// BreakerThreshold/BreakerCooldown tune shard ejection
	// (defaults 3 / 100ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProbeEvery is the health-probe cadence (default 50ms).
	ProbeEvery time.Duration
	// FlushEvery is the tier's write-behind flush cadence
	// (default 200ms).
	FlushEvery time.Duration
	// Seed drives backoff jitter (and nothing else: output is
	// schedule-independent by construction).
	Seed int64
	// NewTransport overrides shard transport construction, keeping the
	// process boundary abstract (tests; a future HTTP transport).  Nil
	// selects the in-process transport over the shared tier.
	NewTransport func(shard int, tier *VerdictTier) (Transport, error)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 16
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 5 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 500 * time.Millisecond
	} else if c.HedgeAfter < 0 {
		c.HedgeAfter = 0
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 100 * time.Millisecond
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 50 * time.Millisecond
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 200 * time.Millisecond
	}
	return c
}

// Stats counts fleet events across the coordinator's lifetime.
type Stats struct {
	Completed atomic.Uint64
	Retries   atomic.Uint64
	Requeues  atomic.Uint64 // shard-death requeues (free)
	Discarded atomic.Uint64 // partial results thrown away on shard death
	Steals    atomic.Uint64
	Hedges    atomic.Uint64
	Kills     atomic.Uint64
	Restarts  atomic.Uint64
	// NetRequeues counts free requeues caused by connection-class wire
	// failures (refused/reset/timeout/truncated) against HTTP shards.
	NetRequeues atomic.Uint64
	// Corrupt counts responses discarded for failing verification
	// (checksum/framing/parse) — every one of these is a report that
	// was received and NOT trusted.
	Corrupt atomic.Uint64
	// Throttled counts 429 shed responses honored via Retry-After.
	Throttled atomic.Uint64
}

// StatsSnapshot is Stats at a point in time, JSON-ready.
type StatsSnapshot struct {
	Completed   uint64 `json:"completed"`
	Retries     uint64 `json:"retries"`
	Requeues    uint64 `json:"requeues"`
	Discarded   uint64 `json:"discarded"`
	Steals      uint64 `json:"steals"`
	Hedges      uint64 `json:"hedges"`
	Kills       uint64 `json:"kills"`
	Restarts    uint64 `json:"restarts"`
	NetRequeues uint64 `json:"net_requeues"`
	Corrupt     uint64 `json:"corrupt"`
	Throttled   uint64 `json:"throttled"`
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Completed:   s.Completed.Load(),
		Retries:     s.Retries.Load(),
		Requeues:    s.Requeues.Load(),
		Discarded:   s.Discarded.Load(),
		Steals:      s.Steals.Load(),
		Hedges:      s.Hedges.Load(),
		Kills:       s.Kills.Load(),
		Restarts:    s.Restarts.Load(),
		NetRequeues: s.NetRequeues.Load(),
		Corrupt:     s.Corrupt.Load(),
		Throttled:   s.Throttled.Load(),
	}
}

// Result is one Run's outcome: slices align with the input jobs.
type Result struct {
	Names   []string
	Reports []*report.Report
	Errs    []error
	Stats   StatsSnapshot
}

// Err returns the first per-job error in input order, if any.
func (r *Result) Err() error {
	for i, err := range r.Errs {
		if err != nil {
			return fmt.Errorf("fleet: job %d (%s): %w", i, r.Names[i], err)
		}
	}
	return nil
}

// Render merges the per-job reports in declaration order — the byte
// stream the fleet gate diffs against single-node batch output.
func (r *Result) Render() string {
	var b strings.Builder
	for i, rep := range r.Reports {
		b.WriteString("== ")
		b.WriteString(r.Names[i])
		b.WriteString("\n")
		if rep != nil {
			b.WriteString(rep.String())
		} else if r.Errs[i] != nil {
			b.WriteString("error: ")
			b.WriteString(r.Errs[i].Error())
			b.WriteString("\n")
		}
	}
	return b.String()
}

// shard is one failure domain: a transport plus the context whose
// cancellation is the shard's death.
type shard struct {
	id     int
	gen    int // bumped on restart
	ctx    context.Context
	cancel context.CancelFunc
	tr     Transport
	dead   bool
}

// Fleet coordinates the shards.  Safe for concurrent KillShard /
// RestartShard against an in-progress Run — that interleaving is the
// chaos gate's whole subject.
type Fleet struct {
	cfg      Config
	ring     *ring
	tier     *VerdictTier
	breakers *serve.BreakerSet
	stats    Stats

	mu     sync.Mutex
	shards []*shard
	cur    *run // active Run, for restart-spawned workers

	baseCtx context.Context
	stop    context.CancelFunc
	bg      sync.WaitGroup // prober
}

// New builds a fleet per cfg and starts its health prober.  Close it.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	tier, err := NewVerdictTier(cfg.CacheDir, cfg.CacheCap, cfg.FlushEvery)
	if err != nil {
		return nil, err
	}
	baseCtx, stop := context.WithCancel(context.Background())
	f := &Fleet{
		cfg:      cfg,
		ring:     newRing(cfg.Shards, cfg.Replicas),
		tier:     tier,
		breakers: serve.NewBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		shards:   make([]*shard, cfg.Shards),
		baseCtx:  baseCtx,
		stop:     stop,
	}
	for i := range f.shards {
		s, err := f.newShard(i, 0)
		if err != nil {
			stop()
			tier.Close()
			return nil, err
		}
		f.shards[i] = s
	}
	f.bg.Add(1)
	go f.prober()
	return f, nil
}

func (f *Fleet) newShard(id, gen int) (*shard, error) {
	tr, err := f.newTransport(id)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(f.baseCtx)
	return &shard{id: id, gen: gen, ctx: ctx, cancel: cancel, tr: tr}, nil
}

func (f *Fleet) newTransport(id int) (Transport, error) {
	if f.cfg.NewTransport != nil {
		return f.cfg.NewTransport(id, f.tier)
	}
	return newLocalTransport(f.tier)
}

// shardID keys a shard's circuit breaker.
func shardID(i int) string { return "shard-" + strconv.Itoa(i) }

// parseShardID inverts shardID.
func parseShardID(id string) (int, bool) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "shard-"))
	return n, err == nil
}

// shardLive reports whether shard i accepts new placements: alive and
// not breaker-ejected.
func (f *Fleet) shardLive(i int) bool {
	f.mu.Lock()
	dead := f.shards[i].dead
	f.mu.Unlock()
	return !dead && !f.breakers.Tripped(shardID(i))
}

// Run analyzes jobs across the fleet and merges the outcome in input
// order.  Concurrent Runs are serialized by design (one batch at a
// time); Kill/RestartShard may interleave freely.
func (f *Fleet) Run(ctx context.Context, jobs []Job) *Result {
	r := newRun(f, jobs)

	f.mu.Lock()
	f.cur = r
	var workers sync.WaitGroup
	for _, s := range f.shards {
		if !s.dead {
			workers.Add(1)
			go func(s *shard, gen int) {
				defer workers.Done()
				f.worker(s, gen, r)
			}(s, s.gen)
		}
	}
	f.mu.Unlock()

	r.place()

	var hedgeStop chan struct{}
	if f.cfg.HedgeAfter > 0 {
		hedgeStop = make(chan struct{})
		f.bg.Add(1)
		go f.hedger(r, hedgeStop)
	}

	r.wait(ctx)

	if hedgeStop != nil {
		close(hedgeStop)
	}
	f.mu.Lock()
	f.cur = nil
	f.mu.Unlock()
	r.wake()
	workers.Wait()

	return &Result{Names: jobNames(jobs), Reports: r.reports, Errs: r.errs, Stats: f.stats.snapshot()}
}

func jobNames(jobs []Job) []string {
	names := make([]string, len(jobs))
	for i, j := range jobs {
		names[i] = j.Name
	}
	return names
}

// worker is one shard generation's execution loop: pull (or steal) a
// task, run it over the transport, classify the outcome.
func (f *Fleet) worker(s *shard, gen int, r *run) {
	// Wake our next() wait when the shard dies mid-block.
	stopWatch := context.AfterFunc(s.ctx, r.wake)
	defer stopWatch()
	for {
		idx, ok := r.next(s.id, s.ctx)
		if !ok {
			return
		}
		// The analysis context dies with the shard OR with the run —
		// when every task is done (or the run aborts), duplicate
		// executions still in flight are canceled, not awaited.
		actx, acancel := context.WithCancel(s.ctx)
		go func() {
			select {
			case <-r.done:
				acancel()
			case <-actx.Done():
			}
		}()
		rep, err := s.tr.Analyze(actx, r.jobs[idx])
		acancel()
		switch {
		case s.ctx.Err() != nil:
			// Shard killed mid-task.  AnalyzeCtx degrades to a partial
			// report with a nil error on cancellation, so the report is
			// NOT trustworthy here: discard it and requeue — recompute
			// is deterministic, a dropped partial is never visible.
			r.failDead(idx)
			return
		case r.ended():
			// The run finished (or aborted) underneath this execution;
			// whatever it produced is surplus.
			r.drop(idx)
		case err == nil:
			f.breakers.OK(shardID(s.id))
			r.complete(idx, rep)
		default:
			f.classifyFailure(s, r, idx, err)
		}
	}
}

// classifyFailure routes a non-nil Analyze error to the scheduler
// decision its class demands (see classify.go for the taxonomy).
// In-process transports produce plain errors, which keep the original
// attributed-failure path.
func (f *Fleet) classifyFailure(s *shard, r *run, idx int, err error) {
	var ne *NetError
	if !errors.As(err, &ne) {
		f.breakers.Fail(shardID(s.id))
		r.fail(idx, err)
		return
	}
	switch ne.Class {
	case ErrConn, ErrCorrupt:
		// The shard (or the wire) failed, not the job: feed the breaker
		// — consecutive failures eject the shard from placement and
		// from pulling (see next()) — and requeue for free after a
		// beat, exactly like an in-process shard death.
		f.breakers.Fail(shardID(s.id))
		if ne.Class == ErrCorrupt {
			f.stats.Corrupt.Add(1)
		}
		f.stats.NetRequeues.Add(1)
		f.stats.Discarded.Add(1)
		r.failNet(idx, f.cfg.RetryBase)
	case ErrTerminal:
		// The shard judged the job itself bad; no other shard will
		// disagree.  No breaker feed — the shard did its job.
		r.failTerminal(idx, err)
	case ErrThrottle:
		// Load shedding is the admission queue working as designed:
		// budgeted retry honoring the server's Retry-After, breaker
		// untouched.
		f.stats.Throttled.Add(1)
		r.failAfter(idx, err, ne.RetryAfter)
	default: // ErrServer
		f.breakers.Fail(shardID(s.id))
		r.failAfter(idx, err, ne.RetryAfter)
	}
}

// KillShard simulates shard death: its context is canceled (in-flight
// work unwinds and is discarded+requeued), its queue is left in place
// for the survivors to steal, and its breaker trips via the prober's
// failed health checks.
func (f *Fleet) KillShard(i int) {
	f.mu.Lock()
	s := f.shards[i]
	if s.dead {
		f.mu.Unlock()
		return
	}
	s.dead = true
	s.cancel()
	cur := f.cur
	f.mu.Unlock()
	f.stats.Kills.Add(1)
	if cur != nil {
		cur.wake()
	}
}

// RestartShard revives a killed shard as a fresh generation: new
// context, new transport with an empty local cache (it re-warms from
// the shared tier).  The shard's breaker is left tripped — the health
// prober's next half-open probe closes it, which is the recovery path
// the chaos gate exercises.
func (f *Fleet) RestartShard(i int) error {
	f.mu.Lock()
	old := f.shards[i]
	if !old.dead {
		f.mu.Unlock()
		return nil
	}
	s, err := f.newShard(i, old.gen+1)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	old.tr.Close()
	f.shards[i] = s
	cur := f.cur
	if cur != nil {
		go f.worker(s, s.gen, cur)
	}
	f.mu.Unlock()
	f.stats.Restarts.Add(1)
	if cur != nil {
		cur.wake()
	}
	return nil
}

// Snapshot exposes per-shard breaker state for observability.
func (f *Fleet) Snapshot() map[string]serve.BreakerInfo { return f.breakers.Snapshot() }

// TierStats exposes the shared verdict tier's counters.
func (f *Fleet) TierStats() anacache.Stats { return f.tier.Stats() }

// StatsSnapshot returns the fleet's lifetime counters.
func (f *Fleet) StatsSnapshot() StatsSnapshot { return f.stats.snapshot() }

// Close stops the prober, closes every transport, and flushes the
// shared tier so the next fleet warms from this one's work.
func (f *Fleet) Close() error {
	f.stop()
	f.bg.Wait()
	f.mu.Lock()
	for _, s := range f.shards {
		s.cancel()
		s.tr.Close()
	}
	f.mu.Unlock()
	return f.tier.Close()
}

// prober is the fleet's health loop.  Each tick it (a) health-checks
// every shard — a coordinator-side kill flag or a failed transport
// Probe (an HTTP shard's /readyz) both count as unhealthy, and
// consecutive failures trip the breaker and eject the shard from
// placement and pulling — and (b) takes whatever half-open probes the
// breaker set grants, resolving each against the same health check.
// A revived shard (restarted in-process, or a shard *process* brought
// back at the same address) therefore recovers through the genuine
// Open → HalfOpen → Closed path.  Each tick ends by waking the active
// run so workers parked on a tripped breaker re-check.
func (f *Fleet) prober() {
	defer f.bg.Done()
	tick := time.NewTicker(f.cfg.ProbeEvery)
	defer tick.Stop()
	for {
		select {
		case <-f.baseCtx.Done():
			return
		case <-tick.C:
		}
		f.mu.Lock()
		shards := append([]*shard(nil), f.shards...)
		dead := make([]bool, len(shards))
		for i, s := range shards {
			dead[i] = s.dead
		}
		cur := f.cur
		f.mu.Unlock()
		healthy := f.probeAll(shards, dead)
		for i, h := range healthy {
			if !h {
				f.breakers.Fail(shardID(i))
			}
		}
		_, probes := f.breakers.Acquire()
		for _, id := range probes {
			i, ok := parseShardID(id)
			if !ok || i >= len(healthy) {
				continue
			}
			if healthy[i] {
				f.breakers.OK(id)
			} else {
				f.breakers.Fail(id)
			}
		}
		if cur != nil {
			cur.wake()
		}
	}
}

// probeAll health-checks every shard concurrently (a blackholed HTTP
// probe must not stall the whole tick) with a bounded per-probe
// deadline.  dead is the caller's under-lock snapshot: shard death is
// racy against probing, and a kill landing mid-tick just means one
// more failed probe next tick.
func (f *Fleet) probeAll(shards []*shard, dead []bool) []bool {
	healthy := make([]bool, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		if dead[i] {
			continue
		}
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(f.baseCtx, time.Second)
			defer cancel()
			healthy[i] = s.tr.Probe(pctx) == nil
		}(i, s)
	}
	wg.Wait()
	return healthy
}

// hedger watches the active run for stragglers and re-dispatches them
// onto idle live shards.  First completion wins; the duplicate's bytes
// are identical anyway.
func (f *Fleet) hedger(r *run, stop chan struct{}) {
	defer f.bg.Done()
	period := f.cfg.HedgeAfter / 4
	if period <= 0 {
		period = f.cfg.HedgeAfter
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-f.baseCtx.Done():
			return
		case <-tick.C:
		}
		idle := -1
		for i := range f.shards {
			if f.shardLive(i) && r.queueEmpty(i) {
				idle = i
				break
			}
		}
		if idle < 0 {
			continue
		}
		for _, idx := range r.stragglers(f.cfg.HedgeAfter) {
			r.hedge(idx, idle)
		}
	}
}
