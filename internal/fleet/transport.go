package fleet

import (
	"context"

	"deepmc/internal/anacache"
	"deepmc/internal/core"
	"deepmc/internal/report"
)

// Transport is the shard execution boundary.  The coordinator only
// ever talks to shards through it, so the in-process goroutine shards
// shipped here and a future HTTP transport (one serve daemon per
// shard) are interchangeable: Analyze must honor ctx — a canceled
// shard context is how the coordinator kills a shard out from under
// its work — and Close releases whatever the transport holds.
type Transport interface {
	Analyze(ctx context.Context, job Job) (*report.Report, error)
	Close() error
}

// localTransport runs analyses in-process with a shard-local
// memory-only cache backed by the fleet's shared verdict tier.  This
// mirrors the deployment shape exactly — per-shard hot cache, shared
// warm tier — with the network hop elided.
type localTransport struct {
	cache *anacache.Cache
}

// newLocalTransport builds a fresh shard cache wired to the tier.  A
// restarted shard gets a new one: its memory is gone (that is what a
// restart means) but it re-warms from the tier on first touch.
func newLocalTransport(tier *VerdictTier) (*localTransport, error) {
	c, err := anacache.New("")
	if err != nil {
		return nil, err
	}
	if tier != nil {
		c.SetBacking(tier)
	}
	return &localTransport{cache: c}, nil
}

func (t *localTransport) Analyze(ctx context.Context, job Job) (*report.Report, error) {
	cfg := job.Config
	cfg.Cache = t.cache
	cfg.CacheDir = "" // the shard cache already layers over the tier
	return core.AnalyzeCtx(ctx, job.Module, cfg)
}

func (t *localTransport) Close() error { return nil }
