package fleet

import (
	"context"

	"deepmc/internal/anacache"
	"deepmc/internal/core"
	"deepmc/internal/report"
)

// Transport is the shard execution boundary.  The coordinator only
// ever talks to shards through it, so the in-process goroutine shards
// and the HTTP transport (one `deepmc serve -shard` daemon per shard)
// are interchangeable: Analyze must honor ctx — a canceled shard
// context is how the coordinator kills a shard out from under its
// work — Probe is the health check the breaker prober drives (an
// in-process shard is healthy by construction; an HTTP shard answers
// /readyz), and Close releases whatever the transport holds.
type Transport interface {
	Analyze(ctx context.Context, job Job) (*report.Report, error)
	Probe(ctx context.Context) error
	Close() error
}

// localTransport runs analyses in-process with a shard-local
// memory-only cache backed by the fleet's shared verdict tier.  This
// mirrors the deployment shape exactly — per-shard hot cache, shared
// warm tier — with the network hop elided.
type localTransport struct {
	cache *anacache.Cache
}

// newLocalTransport builds a fresh shard cache wired to the tier.  A
// restarted shard gets a new one: its memory is gone (that is what a
// restart means) but it re-warms from the tier on first touch.
func newLocalTransport(tier *VerdictTier) (*localTransport, error) {
	c, err := anacache.New("")
	if err != nil {
		return nil, err
	}
	if tier != nil {
		c.SetBacking(tier)
	}
	return &localTransport{cache: c}, nil
}

func (t *localTransport) Analyze(ctx context.Context, job Job) (*report.Report, error) {
	cfg := job.Config
	cfg.Cache = t.cache
	cfg.CacheDir = "" // the shard cache already layers over the tier
	return core.AnalyzeCtx(ctx, job.Module, cfg)
}

// Probe: an in-process shard that exists is healthy — liveness is the
// coordinator's own kill flag, which the prober checks separately.
func (t *localTransport) Probe(ctx context.Context) error { return nil }

func (t *localTransport) Close() error { return nil }
