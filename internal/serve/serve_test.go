package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"deepmc/internal/core"
	"deepmc/internal/corpus"
	"deepmc/internal/report"
)

// startServer spins up a daemon on a loopback port and tears it down
// with the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return s, "http://" + l.Addr().String()
}

// post sends one /analyze request and returns status, headers and body.
func post(t *testing.T, base string, req Request) (int, http.Header, []byte) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/analyze", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header, body
}

// batchJSON computes the batch-mode report bytes the serve response
// must match exactly.
func batchJSON(t *testing.T, p *corpus.Program) []byte {
	t.Helper()
	m, err := p.Module()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(m, core.Config{Model: p.Model.String()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServeMatchesBatch: for every corpus target, the daemon's response
// body is byte-identical to the batch pipeline's JSON report.
func TestServeMatchesBatch(t *testing.T) {
	_, base := startServer(t, Config{})
	for _, p := range corpus.All() {
		want := batchJSON(t, p)
		status, hdr, body := post(t, base, Request{Corpus: p.Name})
		if status != http.StatusOK {
			t.Fatalf("%s: status = %d, body %s", p.Name, status, body)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("%s: serve report differs from batch report\nserve: %s\nbatch: %s", p.Name, body, want)
		}
		if got := hdr.Get("X-Deepmc-Partial"); got != "false" {
			t.Errorf("%s: X-Deepmc-Partial = %q, want false", p.Name, got)
		}
		// The corpus programs all contain planted bugs, so the batch
		// exit contract says 1.
		if got := hdr.Get("X-Deepmc-Exit"); got != "1" {
			t.Errorf("%s: X-Deepmc-Exit = %q, want 1", p.Name, got)
		}
	}
}

// TestCorpusEndpoint: GET /corpus/{name} is the same analysis.
func TestCorpusEndpoint(t *testing.T) {
	_, base := startServer(t, Config{})
	p := corpus.All()[0]
	resp, err := http.Get(base + "/corpus/" + p.Name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if want := batchJSON(t, p); !bytes.Equal(body, want) {
		t.Errorf("corpus endpoint report differs from batch")
	}
	// Unknown target: 404, not 500.
	resp2, err := http.Get(base + "/corpus/NoSuchThing")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown corpus status = %d, want 404", resp2.StatusCode)
	}
}

// TestBadRequests: malformed bodies and sources degrade to 4xx, never
// 5xx or a wedged worker.
func TestBadRequests(t *testing.T) {
	_, base := startServer(t, Config{})
	resp, err := http.Post(base+"/analyze", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status = %d, want 400", resp.StatusCode)
	}
	for name, req := range map[string]Request{
		"neither":    {},
		"both":       {Source: "module m\n", Corpus: "PMDK"},
		"bad source": {Source: "module ???"},
		"bad model":  {Source: "module m\nfunc main() {\n\tret\n}\n", Model: "bogus"},
	} {
		status, _, body := post(t, base, req)
		if status < 400 || status >= 500 {
			t.Errorf("%s: status = %d (%s), want 4xx", name, status, body)
		}
	}
}

// TestHealthEndpoints: /healthz is always live, /readyz flips on drain,
// /stats serves a snapshot.
func TestHealthEndpoints(t *testing.T) {
	s, base := startServer(t, Config{})
	for _, ep := range []string{"/healthz", "/readyz", "/stats"} {
		resp, err := http.Get(base + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", ep, resp.StatusCode)
		}
	}
	// Flip to draining: readyz refuses, healthz stays live, new
	// analyses are rejected with 503.
	s.draining.Store(true)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("draining healthz = %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/analyze",
		strings.NewReader(`{"corpus":"PMDK"}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining analyze = %d, want 503", rec.Code)
	}
	s.draining.Store(false)
}

// TestLoadShedding: with one worker and a one-deep queue, a burst of
// stalled requests sheds the overflow with 429 + Retry-After — the
// queue never grows unboundedly and every request gets a response.
func TestLoadShedding(t *testing.T) {
	s, base := startServer(t, Config{
		MaxInFlight:    1,
		QueueDepth:     1,
		RequestTimeout: 10 * time.Second,
		Chaos:          Chaos{StallFirst: 20, Stall: 250 * time.Millisecond},
	})
	const n = 10
	statuses := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := fmt.Sprintf("module m%d\ntype t struct {\n\ta: int\n}\nfunc main() {\n\t%%p = palloc t\n\tstore %%p.a, %d @4\n\tret\n}\n", i, i)
			status, hdr, _ := post(t, base, Request{Source: src})
			statuses[i] = status
			retryAfter[i] = hdr.Get("Retry-After")
		}(i)
	}
	wg.Wait()
	ok, shed := 0, 0
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Errorf("shed response %d lacks Retry-After", i)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, st)
		}
	}
	if shed == 0 {
		t.Fatalf("no requests shed (ok=%d); queue bound not enforced", ok)
	}
	if ok == 0 {
		t.Fatalf("no requests completed")
	}
	st := s.Snapshot()
	if st.Shed == 0 {
		t.Errorf("stats.Shed = 0, want > 0")
	}
	if st.QueueHighWater > int64(s.cfg.QueueDepth) {
		t.Errorf("queue high water %d exceeded bound %d", st.QueueHighWater, s.cfg.QueueDepth)
	}
}

// TestCoalescing: identical concurrent requests share one execution and
// return identical bytes.
func TestCoalescing(t *testing.T) {
	s, base := startServer(t, Config{
		MaxInFlight: 2,
		Chaos:       Chaos{StallFirst: 1, Stall: 300 * time.Millisecond},
	})
	const n = 6
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, body := post(t, base, Request{Corpus: "PMFS"})
			if status != http.StatusOK {
				t.Errorf("request %d: status %d", i, status)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("coalesced bodies differ between request 0 and %d", i)
		}
	}
	if s.Snapshot().Coalesced == 0 {
		t.Errorf("stats.Coalesced = 0, want > 0 (identical concurrent requests)")
	}
}

// TestBreakerTripAndRecover drives the full circuit-breaker state
// machine with failpoint-injected pass panics: repeated attributed
// failures degrade the pass per-request, trip the breaker, keep it
// degrading while open, then a half-open probe closes it again.
func TestBreakerTripAndRecover(t *testing.T) {
	s, base := startServer(t, Config{
		BreakerThreshold: 3,
		BreakerCooldown:  250 * time.Millisecond,
		Chaos:            Chaos{FailPass: map[string]int{report.CodeUnflushedWrite: 3}},
	})
	src := func(i int) string {
		return fmt.Sprintf("module b%d\ntype t struct {\n\ta: int\n}\nfunc main() {\n\t%%p = palloc t\n\tstore %%p.a, %d @4\n\tret\n}\n", i, i)
	}
	// Phase 1: three failing requests.  Each panic is attributed to the
	// pass, the request auto-degrades to a 200 partial report with a
	// pass-attributed skip, and the breaker counts toward its trip.
	for i := 0; i < 3; i++ {
		status, hdr, body := post(t, base, Request{Source: src(i)})
		if status != http.StatusOK {
			t.Fatalf("failing request %d: status %d (%s)", i, status, body)
		}
		if hdr.Get("X-Deepmc-Partial") != "true" {
			t.Fatalf("failing request %d not partial: %s", i, body)
		}
		rep, err := report.ParseJSON(body)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, sk := range rep.Skipped {
			if sk.Stage == report.CodeUnflushedWrite {
				found = true
			}
		}
		if !found {
			t.Fatalf("failing request %d lacks a pass-attributed skip: %s", i, body)
		}
	}
	if st := s.Snapshot(); st.Breakers[report.CodeUnflushedWrite].State != "open" {
		t.Fatalf("breaker not open after %d failures: %+v", 3, st.Breakers)
	}
	// Phase 2: while open, requests run with the pass disabled and an
	// attributed "circuit breaker open" skip — no panic, no 500.
	status, _, body := post(t, base, Request{Source: src(10)})
	if status != http.StatusOK {
		t.Fatalf("open-state request: status %d", status)
	}
	rep, err := report.ParseJSON(body)
	if err != nil {
		t.Fatal(err)
	}
	foundOpen := false
	for _, sk := range rep.Skipped {
		if sk.Stage == report.CodeUnflushedWrite && strings.Contains(sk.Reason, "circuit breaker open") {
			foundOpen = true
		}
	}
	if !foundOpen {
		t.Fatalf("open-state report lacks breaker-attributed skip: %s", body)
	}
	for _, w := range rep.Warnings {
		if w.Code == report.CodeUnflushedWrite {
			t.Fatalf("degraded pass still emitted its warning: %s", body)
		}
	}
	// Phase 3: after the cooldown the next request is the half-open
	// probe; the failpoints are exhausted, so it succeeds, closes the
	// breaker, and returns a complete report with the pass's warning.
	time.Sleep(400 * time.Millisecond)
	status, hdr, body := post(t, base, Request{Source: src(20)})
	if status != http.StatusOK {
		t.Fatalf("probe request: status %d", status)
	}
	if hdr.Get("X-Deepmc-Partial") != "false" {
		t.Fatalf("probe request still partial: %s", body)
	}
	rep, err = report.ParseJSON(body)
	if err != nil {
		t.Fatal(err)
	}
	foundWarn := false
	for _, w := range rep.Warnings {
		if w.Code == report.CodeUnflushedWrite {
			foundWarn = true
		}
	}
	if !foundWarn {
		t.Fatalf("recovered pass did not emit its warning again: %s", body)
	}
	if st := s.Snapshot(); st.Breakers[report.CodeUnflushedWrite].State != "closed" {
		t.Fatalf("breaker not closed after successful probe: %+v", st.Breakers)
	}
}

// TestGracefulDrain: a request in flight when Shutdown starts is
// delivered, not dropped, and the lazy disk cache tier is flushed so a
// restarted daemon warms from it.
func TestGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	s, base := startServer(t, Config{
		CacheDir: dir,
		Chaos:    Chaos{StallFirst: 1, Stall: 300 * time.Millisecond},
	})
	p := corpus.All()[0]
	want := batchJSON(t, p)

	type resp struct {
		status int
		body   []byte
	}
	got := make(chan resp, 1)
	go func() {
		status, _, body := post(t, base, Request{Corpus: p.Name})
		got <- resp{status, body}
	}()
	time.Sleep(100 * time.Millisecond) // let the request get in flight
	if err := s.Close(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	r := <-got
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request dropped during drain: status %d", r.status)
	}
	if !bytes.Equal(r.body, want) {
		t.Errorf("drained request returned wrong report")
	}
	// Drain flushed the lazy tier: the cache dir holds verdict entries.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("drain did not flush the disk cache tier")
	}
	if s.Snapshot().CacheFlushed == 0 {
		t.Errorf("stats.CacheFlushed = 0, want > 0")
	}

	// A restarted daemon warms from the flushed tier and still renders
	// byte-identical reports.
	s2, base2 := startServer(t, Config{CacheDir: dir})
	status, _, body := post(t, base2, Request{Corpus: p.Name})
	if status != http.StatusOK {
		t.Fatalf("restarted server: status %d", status)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("warm restarted report differs from batch report")
	}
	if cs := s2.CacheStats(); cs.DiskHits == 0 {
		t.Errorf("restarted server did not hit the flushed disk tier: %+v", cs)
	}
}

// TestDrainingRejectsNewRequests: once draining, new requests on open
// connections get 503 + Connection: close.
func TestDrainingRejectsNewRequests(t *testing.T) {
	s, err := NewServer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.draining.Store(true)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/analyze",
		strings.NewReader(`{"corpus":"PMDK"}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Connection") != "close" {
		t.Errorf("draining response should ask the client to close the connection")
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Errorf("draining response lacks Retry-After")
	}
}
