package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"deepmc/internal/anacache"
	"deepmc/internal/corpus"
	"deepmc/internal/dsa"
	"deepmc/internal/report"
)

// recordingTier is a wire-visible verdict tier that remembers every
// verified PUT, so tests can assert exactly which verdicts a draining
// shard flushed.
type recordingTier struct {
	mu   sync.Mutex
	m    map[anacache.Key][]report.Warning
	puts int
}

func newRecordingTier() *recordingTier {
	return &recordingTier{m: make(map[anacache.Key][]report.Warning)}
}

func (rt *recordingTier) Load(k anacache.Key) ([]report.Warning, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ws, ok := rt.m[k]
	return ws, ok
}

func (rt *recordingTier) Store(k anacache.Key, ws []report.Warning, _ dsa.FuncSummary) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.m[k] = ws
	rt.puts++
}

func (rt *recordingTier) putCount() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.puts
}

// TestShardDrainFlushesTier: the satellite drain guarantee.  A shard
// that acknowledged a verdict must hand it to the shared tier before
// SIGTERM exit — Shutdown flushes the write-behind queue — and a
// replacement shard pointed at the same tier serves the identical
// bytes from backing, not recomputation alone.
func TestShardDrainFlushesTier(t *testing.T) {
	rt := newRecordingTier()
	tierSrv := httptest.NewServer(anacache.BackingHandler(rt))
	defer tierSrv.Close()

	p := corpus.All()[0]
	req := Request{Corpus: p.Name, Model: p.Model.String()}

	s1, base1 := startServer(t, Config{TierURL: tierSrv.URL})
	status, _, body1 := post(t, base1, req)
	if status != http.StatusOK {
		t.Fatalf("shard 1 analyze: status %d: %s", status, body1)
	}
	// The verdict was acknowledged to the client; drain must not lose
	// it even though the tier write rides a write-behind queue.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if rt.putCount() == 0 {
		t.Fatal("drain exited without flushing the acknowledged verdict to the tier")
	}

	// The replacement shard has a cold local cache; the tier is its
	// only memory of the dead shard's work.
	s2, base2 := startServer(t, Config{TierURL: tierSrv.URL})
	status, _, body2 := post(t, base2, req)
	if status != http.StatusOK {
		t.Fatalf("shard 2 analyze: status %d: %s", status, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("restarted shard's response diverges from the drained shard's")
	}
	if cs := s2.CacheStats(); cs.BackingHits == 0 {
		t.Fatalf("restarted shard never read the tier: %+v", cs)
	}
	if ts := s2.TierStats(); ts.Hits == 0 {
		t.Fatalf("remote backing recorded no hits: %+v", ts)
	}
}

// TestShardDrainSurvivesDeadTier: a tier that died must not wedge
// shard shutdown — drain reports the flush failure but still exits.
func TestShardDrainSurvivesDeadTier(t *testing.T) {
	tierSrv := httptest.NewServer(anacache.BackingHandler(newRecordingTier()))
	s, base := startServer(t, Config{TierURL: tierSrv.URL})
	p := corpus.All()[0]
	if status, _, body := post(t, base, Request{Corpus: p.Name, Model: p.Model.String()}); status != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", status, body)
	}
	tierSrv.Close() // tier dies with writes possibly unflushed
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	select {
	case <-done:
		// Flush may or may not have raced the close; either way
		// shutdown returned promptly.
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown wedged on a dead tier")
	}
}

// TestShardChecksumHeaders: every shard response carries the framing
// the HTTP transport verifies — Content-Length plus the body checksum.
func TestShardChecksumHeaders(t *testing.T) {
	_, base := startServer(t, Config{})
	p := corpus.All()[0]
	status, hdr, body := post(t, base, Request{Corpus: p.Name, Model: p.Model.String()})
	if status != http.StatusOK {
		t.Fatalf("analyze: status %d", status)
	}
	if got, want := hdr.Get(anacache.SumHeader), anacache.BodySum(body); got != want {
		t.Fatalf("%s = %q, want %q", anacache.SumHeader, got, want)
	}
}

// TestPModelRequestValidation: an unknown persistence-domain contract
// is a 400 — terminal on the wire, never retried.
func TestPModelRequestValidation(t *testing.T) {
	_, base := startServer(t, Config{})
	p := corpus.All()[0]
	status, _, body := post(t, base, Request{Corpus: p.Name, Model: p.Model.String(), PModel: "no-such-contract"})
	if status != http.StatusBadRequest {
		t.Fatalf("bad pmodel: status %d: %s", status, body)
	}
}
