package serve

import (
	"context"
	"sync"
)

// Request coalescing (singleflight): concurrent requests whose
// normalized analysis inputs hash to the same key share one execution.
// The first arrival becomes the leader and runs the analysis; followers
// park until the leader publishes its result and then return the same
// bytes.  Followers still occupy admission slots — coalescing saves
// CPU, not queue capacity, so load shedding keeps its meaning.
//
// Followers honor their own deadline: a waiter whose context is done
// detaches from the leader and returns immediately instead of blocking
// until the leader finishes.  Fleet retries depend on this — a caller
// with a tight retry budget must be able to give up on a slow leader
// and hedge elsewhere, not inherit the leader's latency.
//
// Unlike golang.org/x/sync/singleflight this keeps zero dependencies
// and returns the coalesced flag explicitly (surfaced in /stats and the
// X-Deepmc-Coalesced header).

// flightCall is one in-flight execution.
type flightCall struct {
	done chan struct{}
	res  *result
}

// flightGroup deduplicates concurrent executions by key.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn once per key among concurrent callers.  The second return
// reports whether this caller coalesced onto another's execution.  A
// coalesced caller whose ctx ends before the leader publishes detaches
// and returns (nil, true): its deadline is its own, never the
// leader's.  The leader itself always runs fn to completion — fn is
// responsible for honoring the leader's context internally — so a
// detached waiter never cancels work other callers are still parked on.
func (g *flightGroup) do(ctx context.Context, key string, fn func() *result) (*result, bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, true
		case <-ctx.Done():
			return nil, true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.res = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, false
}
