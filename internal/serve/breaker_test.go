package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock drives BreakerSet.now deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTrippedSet(t *testing.T, clk *fakeClock) *BreakerSet {
	t.Helper()
	s := NewBreakerSet(3, time.Second)
	s.now = clk.now
	for i := 0; i < 3; i++ {
		s.Fail("unit")
	}
	if !s.Tripped("unit") {
		t.Fatal("breaker did not trip after threshold failures")
	}
	return s
}

// TestBreakerHalfOpenSingleProbe: after the cooldown, many concurrent
// Acquire calls grant the half-open probe to exactly one caller; every
// other caller sees the unit as degraded.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(100, 0)}
	s := newTrippedSet(t, clk)
	clk.advance(2 * time.Second)

	const callers = 32
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		probed   int
		degraded int
	)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			deg, probes := s.Acquire()
			mu.Lock()
			probed += len(probes)
			degraded += len(deg)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()

	if probed != 1 {
		t.Fatalf("probe granted %d times, want exactly 1", probed)
	}
	if degraded != callers-1 {
		t.Fatalf("%d callers saw the unit degraded, want %d", degraded, callers-1)
	}
}

// TestBreakerProbeOutcomeRaces: concurrent successes and failures
// against a single half-open probe resolve to one deterministic
// transition — the first report wins, and late reports degrade to the
// ordinary Closed/Open rules.
func TestBreakerProbeOutcomeRaces(t *testing.T) {
	t.Run("success then late failure", func(t *testing.T) {
		clk := &fakeClock{t: time.Unix(100, 0)}
		s := newTrippedSet(t, clk)
		clk.advance(2 * time.Second)
		if _, probes := s.Acquire(); len(probes) != 1 {
			t.Fatalf("probe not granted: %v", probes)
		}
		s.OK("unit")   // probe succeeds: HalfOpen -> Closed
		s.Fail("unit") // late failure counts as one Closed-state failure
		if s.Tripped("unit") {
			t.Fatal("one late failure after a successful probe must not reopen")
		}
		if info := s.Snapshot()["unit"]; info.State != "closed" || info.ConsecutiveFails != 1 {
			t.Fatalf("want closed with fails=1, got %+v", info)
		}
	})

	t.Run("failure then late success", func(t *testing.T) {
		clk := &fakeClock{t: time.Unix(100, 0)}
		s := newTrippedSet(t, clk)
		clk.advance(2 * time.Second)
		if _, probes := s.Acquire(); len(probes) != 1 {
			t.Fatalf("probe not granted: %v", probes)
		}
		s.Fail("unit") // probe fails: HalfOpen -> Open, new cooldown
		s.OK("unit")   // late success against the reopened breaker is ignored
		if !s.Tripped("unit") {
			t.Fatal("late success must not close a breaker whose probe failed")
		}
		if info := s.Snapshot()["unit"]; info.State != "open" || info.Trips != 2 {
			t.Fatalf("want open with trips=2, got %+v", info)
		}
		// And before the new cooldown elapses, no second probe.
		clk.advance(500 * time.Millisecond)
		if deg, probes := s.Acquire(); len(probes) != 0 || len(deg) != 1 {
			t.Fatalf("probe granted before cooldown: deg=%v probes=%v", deg, probes)
		}
	})
}

// TestBreakerConcurrentResolutions hammers a half-open probe with mixed
// OK/Fail reports under the race detector: the set must end in a legal
// state (closed or open) with consistent snapshot fields, never a
// half-open breaker nobody owns.
func TestBreakerConcurrentResolutions(t *testing.T) {
	clk := &fakeClock{t: time.Unix(100, 0)}
	s := newTrippedSet(t, clk)
	clk.advance(2 * time.Second)
	if _, probes := s.Acquire(); len(probes) != 1 {
		t.Fatal("probe not granted")
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(fail bool) {
			defer wg.Done()
			if fail {
				s.Fail("unit")
			} else {
				s.OK("unit")
			}
		}(i%2 == 0)
	}
	wg.Wait()
	if st := s.Snapshot()["unit"].State; st == "half-open" {
		t.Fatal("probe resolution left the breaker half-open")
	}
}

// TestFlightDetachOnCancel: a coalesced waiter whose context expires
// while the leader is still running detaches immediately instead of
// inheriting the leader's latency, and the leader's eventual result is
// unaffected.
func TestFlightDetachOnCancel(t *testing.T) {
	g := newFlightGroup()
	leaderStarted := make(chan struct{})
	release := make(chan struct{})
	want := &result{status: 200}

	var wg sync.WaitGroup
	wg.Add(1)
	var leaderRes *result
	var leaderCoalesced bool
	go func() {
		defer wg.Done()
		leaderRes, leaderCoalesced = g.do(context.Background(), "k", func() *result {
			close(leaderStarted)
			<-release
			return want
		})
	}()
	<-leaderStarted

	// The waiter's deadline is its own: it must return well before the
	// leader is released.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	var waiterRes *result
	var waiterCoalesced bool
	go func() {
		waiterRes, waiterCoalesced = g.do(ctx, "k", func() *result {
			t.Error("waiter must coalesce, not execute")
			return nil
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("detached waiter blocked behind the leader")
	}
	if waiterRes != nil || !waiterCoalesced {
		t.Fatalf("detached waiter: res=%v coalesced=%v, want nil/true", waiterRes, waiterCoalesced)
	}

	close(release)
	wg.Wait()
	if leaderRes != want || leaderCoalesced {
		t.Fatalf("leader: res=%v coalesced=%v", leaderRes, leaderCoalesced)
	}

	// The key is free again: a later caller leads a fresh execution.
	res, coalesced := g.do(context.Background(), "k", func() *result { return want })
	if res != want || coalesced {
		t.Fatal("key not released after leader completion")
	}
}
