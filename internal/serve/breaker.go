package serve

import (
	"sort"
	"sync"
	"time"
)

// Circuit breakers, one per analysis pass.  A pass that keeps panicking
// on production traffic (a rule bug tickled by a particular input
// shape) must not take the whole daemon down with it: after Threshold
// consecutive attributed failures the pass's breaker opens, and every
// subsequent request runs with the pass disabled plus a skip annotation
// attributing exactly what is missing (report stage = the pass ID).
// After Cooldown one request is admitted as a half-open probe with the
// pass re-enabled; its success closes the breaker, its failure reopens
// it for another cooldown.
//
// The state machine per pass:
//
//	Closed --(Threshold consecutive failures)--> Open
//	Open --(Cooldown elapsed; one probe granted)--> HalfOpen
//	HalfOpen --(probe succeeds)--> Closed
//	HalfOpen --(probe fails)--> Open
//
// Any success in Closed resets the consecutive-failure count.

// breakerState is one pass breaker's position in the state machine.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String renders the state for /stats.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breaker is one pass's record.  Guarded by the owning set's mutex.
type breaker struct {
	state     breakerState
	fails     int       // consecutive attributed failures while Closed
	trippedAt time.Time // when the breaker last opened
	trips     int       // lifetime trip count (stats)
}

// breakerSet holds the per-pass breakers.  Entries are created lazily
// on the first failure or trip, so a healthy daemon carries no state.
type breakerSet struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests
	b         map[string]*breaker
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		b:         make(map[string]*breaker),
	}
}

// acquire partitions the tracked passes for one request: degraded lists
// the passes the request must run without (breaker open, or half-open
// with the probe already owned by another request); probes lists the
// passes this request re-enables as the half-open probe.  Both are
// sorted for deterministic skip annotations.
func (s *breakerSet) acquire() (degraded, probes []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, br := range s.b {
		switch br.state {
		case breakerOpen:
			if s.now().Sub(br.trippedAt) >= s.cooldown {
				br.state = breakerHalfOpen
				probes = append(probes, id)
			} else {
				degraded = append(degraded, id)
			}
		case breakerHalfOpen:
			// Another request holds the probe; stay degraded until it
			// reports back.
			degraded = append(degraded, id)
		}
	}
	sort.Strings(degraded)
	sort.Strings(probes)
	return degraded, probes
}

// fail records an attributed failure of one pass.  While Closed it
// counts toward the trip threshold; a failed half-open probe reopens
// immediately.
func (s *breakerSet) fail(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	br := s.b[id]
	if br == nil {
		br = &breaker{}
		s.b[id] = br
	}
	switch br.state {
	case breakerHalfOpen:
		br.state = breakerOpen
		br.trippedAt = s.now()
		br.trips++
	case breakerClosed:
		br.fails++
		if br.fails >= s.threshold {
			br.state = breakerOpen
			br.trippedAt = s.now()
			br.trips++
		}
	}
}

// ok records a successful run of one pass: a half-open probe closes the
// breaker, and any Closed-state failure streak resets.
func (s *breakerSet) ok(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	br := s.b[id]
	if br == nil {
		return
	}
	switch br.state {
	case breakerHalfOpen:
		br.state = breakerClosed
		br.fails = 0
	case breakerClosed:
		br.fails = 0
	}
}

// snapshot renders every tracked breaker's state and lifetime trip
// count for /stats.
func (s *breakerSet) snapshot() map[string]BreakerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]BreakerInfo, len(s.b))
	for id, br := range s.b {
		out[id] = BreakerInfo{State: br.state.String(), Trips: br.trips, ConsecutiveFails: br.fails}
	}
	return out
}

// BreakerInfo is one pass breaker's /stats rendering.
type BreakerInfo struct {
	State            string `json:"state"`
	Trips            int    `json:"trips"`
	ConsecutiveFails int    `json:"consecutive_fails"`
}
