package serve

import (
	"sort"
	"sync"
	"time"
)

// Circuit breakers, one per protected unit.  The serve daemon keys them
// by analysis pass: a pass that keeps panicking on production traffic
// (a rule bug tickled by a particular input shape) must not take the
// whole daemon down with it.  The fleet coordinator reuses the same
// state machine keyed by shard ID: a shard that keeps failing work is
// ejected from new-work routing until a health probe recovers it.
//
// After Threshold consecutive attributed failures the unit's breaker
// opens, and the owner stops routing to it (serve: the pass is disabled
// with a skip annotation; fleet: the shard is skipped by the hash
// ring).  After Cooldown one caller is admitted as a half-open probe;
// its success closes the breaker, its failure reopens it for another
// cooldown.
//
// The state machine per unit:
//
//	Closed --(Threshold consecutive failures)--> Open
//	Open --(Cooldown elapsed; one probe granted)--> HalfOpen
//	HalfOpen --(probe succeeds)--> Closed
//	HalfOpen --(probe fails)--> Open
//
// Any success in Closed resets the consecutive-failure count.  The
// half-open probe is exclusive: concurrent Acquire calls grant it to
// exactly one caller, and late resolutions against an already-resolved
// probe degrade to the Closed/Open rules (a late failure after a
// successful probe counts one Closed-state failure; a late success
// after a failed probe is ignored) — one deterministic transition per
// probe, never a lost update.

// breakerState is one breaker's position in the state machine.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String renders the state for /stats.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breaker is one unit's record.  Guarded by the owning set's mutex.
type breaker struct {
	state     breakerState
	fails     int       // consecutive attributed failures while Closed
	trippedAt time.Time // when the breaker last opened
	trips     int       // lifetime trip count (stats)
}

// BreakerSet holds the per-unit breakers.  Entries are created lazily
// on the first failure or trip, so a healthy owner carries no state.
// Safe for concurrent use.
type BreakerSet struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests
	b         map[string]*breaker
}

// NewBreakerSet builds a set that trips a unit after threshold
// consecutive failures and grants a half-open probe after cooldown.
func NewBreakerSet(threshold int, cooldown time.Duration) *BreakerSet {
	return &BreakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		b:         make(map[string]*breaker),
	}
}

// Acquire partitions the tracked units for one caller: degraded lists
// the units the caller must route around (breaker open, or half-open
// with the probe already owned by another caller); probes lists the
// units this caller re-enables as the half-open probe.  Both are sorted
// for deterministic annotations.
func (s *BreakerSet) Acquire() (degraded, probes []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, br := range s.b {
		switch br.state {
		case breakerOpen:
			if s.now().Sub(br.trippedAt) >= s.cooldown {
				br.state = breakerHalfOpen
				probes = append(probes, id)
			} else {
				degraded = append(degraded, id)
			}
		case breakerHalfOpen:
			// Another caller holds the probe; stay degraded until it
			// reports back.
			degraded = append(degraded, id)
		}
	}
	sort.Strings(degraded)
	sort.Strings(probes)
	return degraded, probes
}

// Fail records an attributed failure of one unit.  While Closed it
// counts toward the trip threshold; a failed half-open probe reopens
// immediately.
func (s *BreakerSet) Fail(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	br := s.b[id]
	if br == nil {
		br = &breaker{}
		s.b[id] = br
	}
	switch br.state {
	case breakerHalfOpen:
		br.state = breakerOpen
		br.trippedAt = s.now()
		br.trips++
	case breakerClosed:
		br.fails++
		if br.fails >= s.threshold {
			br.state = breakerOpen
			br.trippedAt = s.now()
			br.trips++
		}
	}
}

// OK records a successful run of one unit: a half-open probe closes the
// breaker, and any Closed-state failure streak resets.
func (s *BreakerSet) OK(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	br := s.b[id]
	if br == nil {
		return
	}
	switch br.state {
	case breakerHalfOpen:
		br.state = breakerClosed
		br.fails = 0
	case breakerClosed:
		br.fails = 0
	}
}

// Tripped reports whether a unit's breaker is currently not Closed —
// the routing predicate ("is this unit ejected right now?").
func (s *BreakerSet) Tripped(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	br := s.b[id]
	return br != nil && br.state != breakerClosed
}

// Snapshot renders every tracked breaker's state and lifetime trip
// count for /stats.
func (s *BreakerSet) Snapshot() map[string]BreakerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]BreakerInfo, len(s.b))
	for id, br := range s.b {
		out[id] = BreakerInfo{State: br.state.String(), Trips: br.trips, ConsecutiveFails: br.fails}
	}
	return out
}

// BreakerInfo is one breaker's /stats rendering.
type BreakerInfo struct {
	State            string `json:"state"`
	Trips            int    `json:"trips"`
	ConsecutiveFails int    `json:"consecutive_fails"`
}
