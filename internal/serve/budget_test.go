package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"deepmc/internal/report"
)

// deepChainSource builds a synthetic module whose merged trace size
// grows exponentially with depth: each level writes a few cells
// (store/flush/fence) and then calls the level below twice, so the
// trace-entry count roughly doubles per level.  At depth 8 the root
// function's merged traces run to thousands of entries — far past a
// small MaxTraceEntries budget, nowhere near enough to OOM or stall.
func deepChainSource(depth int) string {
	var b strings.Builder
	b.WriteString("module deepchain\n\n")
	b.WriteString("type obj struct {\n\ta: int\n\tb: int\n}\n\n")
	line := 1
	b.WriteString("func f0(p: *obj) {\n\tfile \"deep.c\"\n")
	for _, f := range []string{"a", "b"} {
		fmt.Fprintf(&b, "\tstore %%p.%s, 1 @%d\n", f, line)
		line++
		fmt.Fprintf(&b, "\tflush %%p.%s @%d\n", f, line)
		line++
		fmt.Fprintf(&b, "\tfence @%d\n", line)
		line++
	}
	b.WriteString("\tret\n}\n\n")
	for d := 1; d <= depth; d++ {
		fmt.Fprintf(&b, "func f%d(p: *obj) {\n\tfile \"deep.c\"\n", d)
		fmt.Fprintf(&b, "\tcall f%d(%%p)\n", d-1)
		fmt.Fprintf(&b, "\tcall f%d(%%p)\n", d-1)
		b.WriteString("\tret\n}\n\n")
	}
	b.WriteString("func main() {\n\tfile \"deep.c\"\n")
	b.WriteString("\t%p = palloc obj\n")
	fmt.Fprintf(&b, "\tcall f%d(%%p)\n", depth)
	b.WriteString("\tret\n}\n")
	return b.String()
}

// TestBudgetEnforcement is the satellite-3 gate: a module engineered to
// exceed the trace-entry budget must come back as a 200 partial report
// with a budget-attributed skip — never a timeout, 500, or OOM-kill —
// and identically at every worker count.
func TestBudgetEnforcement(t *testing.T) {
	src := deepChainSource(8)
	_, base := startServer(t, Config{MaxTraceEntries: 64})
	var first []byte
	for _, workers := range []int{1, 2, 8} {
		status, hdr, body := post(t, base, Request{Source: src, Workers: workers})
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status %d (%s)", workers, status, body)
		}
		if hdr.Get("X-Deepmc-Partial") != "true" {
			t.Fatalf("workers=%d: report not partial: %s", workers, body)
		}
		rep, err := report.ParseJSON(body)
		if err != nil {
			t.Fatalf("workers=%d: parse: %v", workers, err)
		}
		budgetSkips := 0
		for _, sk := range rep.Skipped {
			switch sk.Stage {
			case report.StageBudget:
				budgetSkips++
				if !strings.Contains(sk.Reason, "budget") {
					t.Errorf("workers=%d: budget skip lacks attribution: %q", workers, sk.Reason)
				}
			case report.StageTraces, report.StageScan:
				t.Errorf("workers=%d: budget exhaustion misattributed to %s: %q",
					workers, sk.Stage, sk.Reason)
			}
			if strings.Contains(sk.Reason, "deadline") || strings.Contains(sk.Reason, "context") {
				t.Errorf("workers=%d: budget overrun degraded to a timeout: %q", workers, sk.Reason)
			}
		}
		if budgetSkips == 0 {
			t.Fatalf("workers=%d: no budget-attributed skip in %s", workers, body)
		}
		if first == nil {
			first = body
		} else if !bytes.Equal(first, body) {
			// Workers is excluded from the coalescing key precisely
			// because the merge is deterministic; prove it.
			t.Fatalf("workers=%d: report differs from workers=1 run", workers)
		}
	}
}

// TestBudgetClamp: a request cannot ask for a bigger budget than the
// server allows; a smaller one is honored.
func TestBudgetClamp(t *testing.T) {
	src := deepChainSource(8)
	_, base := startServer(t, Config{MaxTraceEntries: 64})
	// Request tries to blow past the server cap: still clamped to 64,
	// still partial.
	status, hdr, _ := post(t, base, Request{Source: src, MaxTraceEntries: 1 << 20})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if hdr.Get("X-Deepmc-Partial") != "true" {
		t.Fatalf("server budget cap not enforced on greedy request")
	}
	// A server with a roomy default honors a request's tighter budget.
	_, base2 := startServer(t, Config{})
	status, hdr, _ = post(t, base2, Request{Source: src, MaxTraceEntries: 64})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if hdr.Get("X-Deepmc-Partial") != "true" {
		t.Fatalf("request budget not honored under roomy server default")
	}
}
