// Package serve is the DeepMC analysis daemon: a long-lived HTTP
// service that accepts PIR modules (or named corpus targets) and
// returns machine-readable reports.  Robustness is the product — the
// paper's own pipeline bounds loops and recursion because analysis cost
// is input-dependent, and a multi-tenant service must extend the same
// discipline to itself:
//
//   - Admission control: a bounded queue in front of a bounded worker
//     pool.  When the queue is full, new requests are shed immediately
//     with 429 + Retry-After instead of growing an unbounded backlog.
//   - Per-request budgets: every analysis runs under a deadline and a
//     trace-entry budget (core.Config.MaxTraceEntries).  A pathological
//     module degrades to a partial report with a budget-attributed skip
//     — never a hung worker or an OOM kill.
//   - Per-pass circuit breakers: repeated attributed panics in one
//     analysis pass trip that pass's breaker; subsequent requests run
//     with the pass disabled plus a skip annotation naming it, until a
//     half-open probe succeeds (see breaker.go).
//   - Request coalescing: concurrent identical requests share a single
//     execution over the shared warm cache (see flight.go).
//   - Graceful drain: Shutdown stops admission (flipping /readyz),
//     waits for in-flight analyses under a deadline (cancelling them
//     into partial reports if it expires), and flushes the lazy disk
//     cache tier so a restarted daemon warms from it.
//
// Endpoints: POST /analyze, GET /corpus/{name}, GET /healthz,
// GET /readyz, GET /stats.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepmc/internal/anacache"
	"deepmc/internal/checker"
	"deepmc/internal/cli"
	"deepmc/internal/core"
	"deepmc/internal/corpus"
	"deepmc/internal/ir"
	"deepmc/internal/passes"
	"deepmc/internal/pmcontract"
	"deepmc/internal/report"
)

// Config tunes the daemon.  Zero values select production defaults.
type Config struct {
	// Addr is the listen address for ListenAndServe (default :7437).
	Addr string
	// Workers caps each request's checker worker fan-out
	// (0 = GOMAXPROCS).  Output is byte-identical for any value.
	Workers int
	// MaxInFlight bounds concurrent analyses (0 = GOMAXPROCS).
	MaxInFlight int
	// QueueDepth bounds requests waiting beyond the in-flight set
	// (default 64).  Requests arriving past it are shed with 429.
	QueueDepth int
	// RequestTimeout caps each request's total deadline, queue wait
	// included (default 30s).  Requests may ask for less, never more.
	RequestTimeout time.Duration
	// MaxTraceEntries caps each request's trace-entry budget (default
	// 4096, the batch default).  Requests may lower it, never raise it.
	MaxTraceEntries int
	// DrainTimeout bounds Close's graceful drain (default 15s).
	DrainTimeout time.Duration
	// CacheDir enables the analysis cache's disk tier in lazy mode:
	// reads hit it immediately, writes accumulate in memory and flush
	// on drain.  Empty keeps the cache memory-only.
	CacheDir string
	// TierURL attaches a remote shared verdict tier (a fleet
	// coordinator's BackingHandler endpoint) under the local cache:
	// read-through on local misses, write-behind on stores.  This is
	// shard mode's memory hierarchy — local hot cache over the fleet's
	// warm tier.  Shutdown flushes the write-behind queue so every
	// acknowledged verdict reaches the tier before the process exits.
	TierURL string
	// BreakerThreshold is the consecutive attributed failures that trip
	// a pass's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is the open→half-open probe delay (default 5s).
	BreakerCooldown time.Duration
	// Chaos arms deterministic fault injection for the soak/chaos gates.
	// Zero value injects nothing.
	Chaos Chaos
}

// Chaos is the daemon's failpoint surface: deliberately injected
// failures that let the soak gate prove the breaker and shedding
// machinery on demand (the serve-side analogue of internal/faultinj).
type Chaos struct {
	// FailPass arms per-pass failpoints: the next FailPass[id] analyses
	// that run with pass id enabled panic inside the analysis, with the
	// pass ID in the panic value (so attribution is exact).
	FailPass map[string]int
	// StallFirst stalls the first N analyses by Stall before they run
	// (bounded by the request deadline) — deterministic queue pressure
	// for the shedding gate.
	StallFirst int
	// Stall is the per-analysis stall duration.
	Stall time.Duration
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":7437"
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxTraceEntries <= 0 {
		c.MaxTraceEntries = 4096
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	return c
}

// Request is the /analyze body.  Exactly one of Source and Corpus must
// be set.
type Request struct {
	// Source is PIR text to analyze.
	Source string `json:"source,omitempty"`
	// Corpus names a built-in corpus target (PMDK, PMFS, NVM-Direct,
	// Mnemosyne) instead of Source.
	Corpus string `json:"corpus,omitempty"`
	// Model is the declared persistency model (default: strict, or the
	// corpus target's own model).
	Model string `json:"model,omitempty"`
	// AllFunctions checks every function standalone, not just roots.
	AllFunctions bool `json:"all_functions,omitempty"`
	// Passes / DisablePasses select rule passes by stable ID.
	Passes        []string `json:"passes,omitempty"`
	DisablePasses []string `json:"disable_passes,omitempty"`
	// MaxTraceEntries lowers the per-trace entry budget for this
	// request (clamped to the server's budget).
	MaxTraceEntries int `json:"max_trace_entries,omitempty"`
	// Workers lowers the checker fan-out (clamped to the server cap;
	// output is byte-identical for any value).
	Workers int `json:"workers,omitempty"`
	// TimeoutMs lowers the request deadline (clamped to the server
	// cap).
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// PModel is the hardware persistency contract ("x86" or "cxl...";
	// empty selects the default x86 contract).
	PModel string `json:"pmodel,omitempty"`
}

// key fingerprints the analysis-relevant request fields for
// singleflight coalescing.  Workers is deliberately excluded: the
// checker's deterministic-merge guarantee makes output byte-identical
// for any worker count, so requests differing only in fan-out coalesce.
func (r Request) key() string {
	h := sha256.New()
	for _, part := range []string{
		r.Source, r.Corpus, r.Model, r.PModel,
		fmt.Sprintf("all=%v", r.AllFunctions),
		"passes=" + strings.Join(r.Passes, ","),
		"disable=" + strings.Join(r.DisablePasses, ","),
		fmt.Sprintf("entries=%d", r.MaxTraceEntries),
		fmt.Sprintf("timeout=%d", r.TimeoutMs),
	} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// result is one executed request's response.
type result struct {
	status     int
	body       []byte
	exit       int  // X-Deepmc-Exit (200 responses)
	partial    bool // X-Deepmc-Partial (200 responses)
	retryAfter int  // Retry-After seconds (429/503 responses)
}

// Server is the analysis daemon.
type Server struct {
	cfg      Config
	cache    *anacache.Cache
	remote   *anacache.RemoteBacking // shard mode's tier client (nil otherwise)
	http     *http.Server
	lis      net.Listener
	admit    chan struct{} // admission slots: QueueDepth + MaxInFlight
	work     chan struct{} // concurrent-analysis slots: MaxInFlight
	flights  *flightGroup
	breakers *BreakerSet

	baseCtx    context.Context // parent of every analysis; cancelled on forced drain
	cancelBase context.CancelFunc
	draining   atomic.Bool
	start      time.Time

	chaosMu    sync.Mutex
	chaosFail  map[string]int
	chaosStall int

	stats serverStats
}

// serverStats are the daemon's traffic counters.
type serverStats struct {
	admitted       atomic.Int64
	completed      atomic.Int64
	shed           atomic.Int64
	coalesced      atomic.Int64
	failures       atomic.Int64
	breakerRetries atomic.Int64
	timeouts       atomic.Int64
	queueTimeouts  atomic.Int64
	cacheFlushed   atomic.Int64
	drainForced    atomic.Int64
	queueHighWater atomic.Int64
}

// Stats is the /stats snapshot.
type Stats struct {
	SchemaVersion int `json:"schema_version"`
	// Counters.
	Admitted       int64 `json:"admitted"`
	Completed      int64 `json:"completed"`
	Shed           int64 `json:"shed"`
	Coalesced      int64 `json:"coalesced"`
	Failures       int64 `json:"failures"`
	BreakerRetries int64 `json:"breaker_retries"`
	Timeouts       int64 `json:"timeouts"`
	QueueTimeouts  int64 `json:"queue_timeouts"`
	CacheFlushed   int64 `json:"cache_flushed"`
	DrainForced    int64 `json:"drain_forced"`
	QueueHighWater int64 `json:"queue_high_water"`
	// Gauges.
	Queued        int                    `json:"queued"`
	InFlight      int                    `json:"in_flight"`
	QueueCap      int                    `json:"queue_cap"`
	Draining      bool                   `json:"draining"`
	UptimeSeconds float64                `json:"uptime_seconds"`
	Breakers      map[string]BreakerInfo `json:"breakers"`
	Cache         anacache.Stats         `json:"cache"`
	CacheHitRate  float64                `json:"cache_hit_rate"`
}

// NewServer builds a daemon from cfg.  It does not listen yet; call
// ListenAndServe or Serve.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache, err := anacache.NewLazy(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		cache:    cache,
		admit:    make(chan struct{}, cfg.QueueDepth+cfg.MaxInFlight),
		work:     make(chan struct{}, cfg.MaxInFlight),
		flights:  newFlightGroup(),
		breakers: NewBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		start:    time.Now(),
	}
	if cfg.TierURL != "" {
		s.remote = anacache.NewRemoteBacking(cfg.TierURL, anacache.RemoteOptions{})
		cache.SetBacking(s.remote)
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	if len(cfg.Chaos.FailPass) > 0 {
		s.chaosFail = make(map[string]int, len(cfg.Chaos.FailPass))
		for id, n := range cfg.Chaos.FailPass {
			s.chaosFail[id] = n
		}
	}
	s.chaosStall = cfg.Chaos.StallFirst

	mux := http.NewServeMux()
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/corpus/", s.handleCorpus)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/stats", s.handleStats)
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	return s, nil
}

// Handler exposes the daemon's routes (tests drive it without a
// listener).
func (s *Server) Handler() http.Handler { return s.http.Handler }

// Serve accepts connections on l until Shutdown.  Like
// http.Server.Serve it returns http.ErrServerClosed after a graceful
// shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.lis = l
	return s.http.Serve(l)
}

// ListenAndServe listens on cfg.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	l, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Addr returns the bound listener address ("" before Serve) — tests
// listen on :0 and read the real port back.
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Shutdown drains the daemon gracefully: admission stops immediately
// (/readyz flips to 503, new /analyze requests get 503), in-flight
// analyses run to completion under ctx's deadline, and the lazy disk
// cache tier is flushed.  If ctx expires first, in-flight analyses are
// cancelled — they degrade to partial reports and their responses are
// still delivered — and only connections that ignore that too are
// force-closed.  Idempotent; concurrent calls are safe.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	herr := s.http.Shutdown(ctx)
	if herr != nil {
		// Deadline expired with handlers still running: cancel their
		// analyses (they finish fast with partial reports) and give the
		// responses a short grace period to flush.
		s.stats.drainForced.Add(1)
		s.cancelBase()
		gctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err2 := s.http.Shutdown(gctx); err2 == nil {
			herr = nil
		} else {
			s.http.Close()
		}
	}
	n, ferr := s.cache.Flush()
	s.stats.cacheFlushed.Add(int64(n))
	if s.remote != nil {
		// Shard mode's drain contract: every verdict acknowledged to a
		// client must reach the shared tier before the process exits,
		// so a restarted shard (or any sibling) warms from it.  Bounded
		// independently of ctx, which may already be expired on a
		// forced drain.
		fctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := s.remote.Flush(fctx); err != nil && ferr == nil {
			ferr = err
		}
		cancel()
		s.remote.Close()
	}
	if herr != nil {
		return herr
	}
	return ferr
}

// Close is Shutdown bounded by cfg.DrainTimeout.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}

// CacheStats exposes the shared cache's counters (gate assertions).
func (s *Server) CacheStats() anacache.Stats { return s.cache.Stats() }

// TierStats exposes the remote tier client's wire counters (zero when
// no tier is attached).
func (s *Server) TierStats() anacache.RemoteStats {
	if s.remote == nil {
		return anacache.RemoteStats{}
	}
	return s.remote.Stats()
}

// --- HTTP handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// Snapshot assembles the /stats payload.
func (s *Server) Snapshot() Stats {
	cs := s.cache.Stats()
	st := Stats{
		SchemaVersion:  report.SchemaVersion,
		Admitted:       s.stats.admitted.Load(),
		Completed:      s.stats.completed.Load(),
		Shed:           s.stats.shed.Load(),
		Coalesced:      s.stats.coalesced.Load(),
		Failures:       s.stats.failures.Load(),
		BreakerRetries: s.stats.breakerRetries.Load(),
		Timeouts:       s.stats.timeouts.Load(),
		QueueTimeouts:  s.stats.queueTimeouts.Load(),
		CacheFlushed:   s.stats.cacheFlushed.Load(),
		DrainForced:    s.stats.drainForced.Load(),
		QueueHighWater: s.stats.queueHighWater.Load(),
		InFlight:       len(s.work),
		QueueCap:       s.cfg.QueueDepth,
		Draining:       s.draining.Load(),
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Breakers:       s.breakers.Snapshot(),
		Cache:          cs,
	}
	if q := len(s.admit) - len(s.work); q > 0 {
		st.Queued = q
	}
	if total := cs.VerdictHits + cs.VerdictMisses; total > 0 {
		st.CacheHitRate = float64(cs.VerdictHits) / float64(total)
	}
	return st
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": "body too large"})
		return
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	if (req.Source == "") == (req.Corpus == "") {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "exactly one of source and corpus must be set"})
		return
	}
	s.serveRequest(w, req)
}

// handleCorpus maps GET /corpus/{name} to an analysis of the named
// built-in corpus target.
func (s *Server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/corpus/")
	if name == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing corpus name"})
		return
	}
	s.serveRequest(w, Request{Corpus: name})
}

// serveRequest runs admission control, coalescing and execution for one
// decoded request.
func (s *Server) serveRequest(w http.ResponseWriter, req Request) {
	if s.draining.Load() {
		w.Header().Set("Connection", "close")
		writeResult(w, &result{
			status: http.StatusServiceUnavailable,
			body:   errBody("draining: not accepting new requests"), retryAfter: 1,
		}, false)
		return
	}
	// Admission: take a bounded queue slot or shed immediately.
	select {
	case s.admit <- struct{}{}:
	default:
		s.stats.shed.Add(1)
		writeResult(w, &result{
			status: http.StatusTooManyRequests,
			body:   errBody("queue full: load shed"), retryAfter: 1,
		}, false)
		return
	}
	defer func() { <-s.admit }()
	s.stats.admitted.Add(1)
	if q := int64(len(s.admit) - len(s.work)); q > 0 {
		for {
			hw := s.stats.queueHighWater.Load()
			if q <= hw || s.stats.queueHighWater.CompareAndSwap(hw, q) {
				break
			}
		}
	}

	// The request's deadline is fixed here, before coalescing, so a
	// follower parked behind a slow leader still times out on its own
	// clock (flight.go detaches it) rather than inheriting the leader's.
	ctx, cancel := context.WithTimeout(s.baseCtx, s.requestTimeout(req))
	defer cancel()
	res, coalesced := s.flights.do(ctx, req.key(), func() *result { return s.execute(ctx, req) })
	if coalesced {
		s.stats.coalesced.Add(1)
	}
	if res == nil {
		// Detached waiter: its deadline expired while coalesced behind
		// the leader.  The leader's result will still serve the other
		// followers; this caller gets a clean, retryable rejection.
		s.stats.timeouts.Add(1)
		res = &result{
			status: http.StatusServiceUnavailable,
			body:   errBody("deadline expired while coalesced behind an identical request"), retryAfter: 1,
		}
	}
	if res.status == http.StatusOK {
		s.stats.completed.Add(1)
	}
	writeResult(w, res, coalesced)
}

// requestTimeout clamps the per-request deadline against the server
// cap (requests may ask for less, never more).
func (s *Server) requestTimeout(req Request) time.Duration {
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return timeout
}

// execute runs one analysis end to end: worker slot, budgets, breaker
// gating, chaos failpoints, attribution and degradation.  It always
// returns a result (panics are recovered into 500s).  ctx carries the
// request deadline, established by the caller before coalescing.
func (s *Server) execute(ctx context.Context, req Request) *result {
	// Wait for an analysis slot; the request deadline covers the wait.
	select {
	case s.work <- struct{}{}:
		defer func() { <-s.work }()
	case <-ctx.Done():
		s.stats.queueTimeouts.Add(1)
		return &result{
			status: http.StatusServiceUnavailable,
			body:   errBody("timed out waiting for an analysis slot"), retryAfter: 1,
		}
	}

	if d := s.takeStall(); d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
		}
	}

	m, model, errRes := s.resolveModule(req)
	if errRes != nil {
		return errRes
	}

	cfg := core.Config{
		Model:           model,
		PModel:          req.PModel,
		AllFunctions:    req.AllFunctions,
		Workers:         s.clampWorkers(req.Workers),
		MaxTraceEntries: s.clampEntries(req.MaxTraceEntries),
		Passes:          req.Passes,
		DisablePasses:   req.DisablePasses,
		Cache:           s.cache,
	}

	degraded, probes := s.breakers.Acquire()
	runCfg := cfg
	runCfg.DisablePasses = unionIDs(cfg.DisablePasses, degraded)

	rep, aerr := s.runAnalysis(ctx, m, runCfg)
	attributed := attributePasses(aerr)
	for _, id := range attributed {
		s.breakers.Fail(id)
	}
	// Every granted probe must resolve, or the pass wedges half-open:
	// a clean run closes it, anything else reopens it.
	for _, id := range probes {
		if aerr == nil {
			s.breakers.OK(id)
		} else if !containsID(attributed, id) {
			s.breakers.Fail(id)
		}
	}
	if aerr != nil && len(attributed) > 0 {
		// Auto-degrade: retry once with the failing passes disabled, so
		// the client gets a partial report instead of a 500 while the
		// breaker counts toward tripping.
		s.stats.breakerRetries.Add(1)
		runCfg.DisablePasses = unionIDs(runCfg.DisablePasses, attributed)
		rep, aerr = s.runAnalysis(ctx, m, runCfg)
	}
	if aerr != nil {
		s.stats.failures.Add(1)
		return &result{status: http.StatusInternalServerError, body: errBody(aerr.Error())}
	}
	// A clean full run resets failure streaks for every tracked pass
	// that actually ran.
	if len(attributed) == 0 {
		s.breakers.successExcept(degraded)
	}
	for _, id := range degraded {
		rep.AddSkipStage(m.Name, id,
			"circuit breaker open: pass degraded after repeated failures (half-open probe pending)")
	}
	for _, id := range attributed {
		rep.AddSkipStage(m.Name, id,
			"pass panicked and was degraded for this request; breaker counting toward trip")
	}
	rep.Sort()
	if rep.Partial() && ctx.Err() != nil {
		s.stats.timeouts.Add(1)
	}
	body, jerr := rep.JSON()
	if jerr != nil {
		s.stats.failures.Add(1)
		return &result{status: http.StatusInternalServerError, body: errBody(jerr.Error())}
	}
	return &result{status: http.StatusOK, body: body, exit: cli.ExitCode(rep), partial: rep.Partial()}
}

// runAnalysis executes the core analysis with panic isolation and the
// chaos failpoints armed.
func (s *Server) runAnalysis(ctx context.Context, m *ir.Module, cfg core.Config) (rep *report.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("serve: analysis panicked: %v", r)
		}
	}()
	s.maybeFailpoint(cfg)
	return core.AnalyzeCtx(ctx, m, cfg)
}

// maybeFailpoint consumes one armed per-pass failpoint whose pass is
// enabled for this run, panicking with the pass ID in the value so
// attribution is exact.
func (s *Server) maybeFailpoint(cfg core.Config) {
	if s.chaosFail == nil {
		return
	}
	enabled, err := passes.ResolveEnabled(cfg.Passes, cfg.DisablePasses)
	if err != nil {
		return // the analysis will surface the selection error itself
	}
	s.chaosMu.Lock()
	armed := make([]string, 0, len(s.chaosFail))
	for id, n := range s.chaosFail {
		if n > 0 && enabled[id] {
			armed = append(armed, id)
		}
	}
	sort.Strings(armed)
	if len(armed) == 0 {
		s.chaosMu.Unlock()
		return
	}
	id := armed[0]
	s.chaosFail[id]--
	s.chaosMu.Unlock()
	panic(fmt.Sprintf("failpoint: pass %s panicked", id))
}

// takeStall consumes one chaos stall token.
func (s *Server) takeStall() time.Duration {
	if s.cfg.Chaos.Stall <= 0 {
		return 0
	}
	s.chaosMu.Lock()
	defer s.chaosMu.Unlock()
	if s.chaosStall <= 0 {
		return 0
	}
	s.chaosStall--
	return s.cfg.Chaos.Stall
}

// resolveModule loads the request's module: inline PIR source or a
// named corpus target.
func (s *Server) resolveModule(req Request) (*ir.Module, string, *result) {
	if req.Model != "" {
		if _, err := checker.ParseModel(req.Model); err != nil {
			return nil, "", &result{status: http.StatusBadRequest, body: errBody(err.Error())}
		}
	}
	if req.PModel != "" {
		if _, err := pmcontract.ParseContract(req.PModel); err != nil {
			return nil, "", &result{status: http.StatusBadRequest, body: errBody(err.Error())}
		}
	}
	if req.Corpus != "" {
		for _, p := range corpus.All() {
			if p.Name == req.Corpus {
				m, err := p.Module()
				if err != nil {
					return nil, "", &result{status: http.StatusInternalServerError, body: errBody(err.Error())}
				}
				model := req.Model
				if model == "" {
					model = p.Model.String()
				}
				return m, model, nil
			}
		}
		return nil, "", &result{status: http.StatusNotFound,
			body: errBody(fmt.Sprintf("unknown corpus target %q", req.Corpus))}
	}
	m, err := ir.Parse(req.Source)
	if err != nil {
		return nil, "", &result{status: http.StatusBadRequest, body: errBody("parse: " + err.Error())}
	}
	if err := ir.Verify(m); err != nil {
		return nil, "", &result{status: http.StatusBadRequest, body: errBody("verify: " + err.Error())}
	}
	return m, req.Model, nil
}

// clampWorkers resolves the per-request worker count against the server
// cap.
func (s *Server) clampWorkers(reqWorkers int) int {
	cap := s.cfg.Workers
	if cap <= 0 {
		cap = runtime.GOMAXPROCS(0)
	}
	if reqWorkers <= 0 || reqWorkers > cap {
		return cap
	}
	return reqWorkers
}

// clampEntries resolves the per-request trace-entry budget against the
// server budget (requests may lower it, never raise it).
func (s *Server) clampEntries(reqEntries int) int {
	if reqEntries <= 0 || reqEntries > s.cfg.MaxTraceEntries {
		return s.cfg.MaxTraceEntries
	}
	return reqEntries
}

// attributePasses extracts the pass IDs named in an analysis failure
// (nil error → nil).  Failpoints and pass-attributed panics embed the
// stable DMC-xxx code in the message; anything else stays unattributed
// and surfaces as a plain 500.
func attributePasses(err error) []string {
	if err == nil {
		return nil
	}
	msg := err.Error()
	var out []string
	for _, id := range passes.IDs() {
		if strings.Contains(msg, id) {
			out = append(out, id)
		}
	}
	return out
}

// successExcept resets failure streaks for every tracked pass that ran
// (everything not in the degraded list).
func (s *BreakerSet) successExcept(degraded []string) {
	skip := make(map[string]bool, len(degraded))
	for _, id := range degraded {
		skip[id] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, br := range s.b {
		if !skip[id] && br.state == breakerClosed {
			br.fails = 0
		}
	}
}

// unionIDs merges two ID lists, deduplicated and sorted.
func unionIDs(a, b []string) []string {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, l := range [][]string{a, b} {
		for _, id := range l {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Strings(out)
	return out
}

func containsID(ids []string, id string) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// errBody renders a JSON error payload.
func errBody(msg string) []byte {
	b, _ := json.Marshal(map[string]string{"error": msg})
	return b
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
}

// writeResult writes an executed request's response with the exit-code
// contract mirrored into headers: X-Deepmc-Exit carries the 0/1/2 code
// the batch CLI would have exited with, X-Deepmc-Partial flags degraded
// reports, X-Deepmc-Coalesced marks singleflight followers.  Every body
// is length-framed and content-checksummed (X-Deepmc-Sum) so a network
// client can prove it received exactly the bytes the daemon sent — a
// truncated or corrupted report is detected, never trusted.
func writeResult(w http.ResponseWriter, res *result, coalesced bool) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(res.body)))
	h.Set(anacache.SumHeader, anacache.BodySum(res.body))
	if res.retryAfter > 0 {
		h.Set("Retry-After", strconv.Itoa(res.retryAfter))
	}
	if res.status == http.StatusOK {
		h.Set("X-Deepmc-Exit", strconv.Itoa(res.exit))
		h.Set("X-Deepmc-Partial", strconv.FormatBool(res.partial))
	}
	if coalesced {
		h.Set("X-Deepmc-Coalesced", "true")
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}
