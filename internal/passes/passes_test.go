package passes

import (
	"strings"
	"testing"

	"deepmc/internal/pmcontract"
	"deepmc/internal/report"
)

// TestRegistryComplete pins that every report rule is backed by a static
// pass and that both dynamic detectors are registered — the "every rule
// is a pass" contract of the pass-registry architecture.
func TestRegistryComplete(t *testing.T) {
	rules := []report.Rule{
		report.RuleUnflushedWrite, report.RuleMultipleWritesAtOnce,
		report.RuleMissingBarrier, report.RuleMissingBarrierBetweenEpochs,
		report.RuleMissingBarrierNestedTx, report.RuleSemanticMismatch,
		report.RuleStrandDependence, report.RuleFlushUnmodified,
		report.RuleRedundantFlush, report.RuleDurableTxNoWrite,
		report.RuleMultiplePersist,
	}
	for _, r := range rules {
		p, ok := StaticByRule(r)
		if !ok {
			t.Errorf("rule %s has no registered static pass", r)
			continue
		}
		if p.ID != report.CodeFor(r, false) {
			t.Errorf("rule %s: pass ID %s != diagnostic code %s", r, p.ID, report.CodeFor(r, false))
		}
		if p.Doc == "" {
			t.Errorf("pass %s has no doc string", p.ID)
		}
	}
	for _, id := range []string{report.CodeDynWAW, report.CodeDynRAW, report.CodeDynUnflushedRAW} {
		p, ok := ByID(id)
		if !ok {
			t.Errorf("dynamic detector %s not registered", id)
			continue
		}
		if p.Kind != Dynamic {
			t.Errorf("%s registered as %s, want dynamic", id, p.Kind)
		}
	}
}

func TestIDsUniqueAndStable(t *testing.T) {
	seen := make(map[string]bool)
	for _, p := range All() {
		if seen[p.ID] {
			t.Errorf("duplicate pass ID %s", p.ID)
		}
		seen[p.ID] = true
		if !strings.HasPrefix(p.ID, "DMC-S") && !strings.HasPrefix(p.ID, "DMC-D") && !strings.HasPrefix(p.ID, "DMC-X") {
			t.Errorf("pass ID %s outside the DMC-Sxx/DMC-Dxx/DMC-Xxx namespace", p.ID)
		}
	}
	if len(seen) != 16 {
		t.Errorf("registry has %d passes, want 16 (13 static + 3 dynamic)", len(seen))
	}
}

func TestResolveEnabled(t *testing.T) {
	all, err := ResolveEnabled(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(All()) {
		t.Errorf("default enables %d passes, want %d", len(all), len(All()))
	}
	only, err := ResolveEnabled([]string{report.CodeUnflushedWrite}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(only) != 1 || !only[report.CodeUnflushedWrite] {
		t.Errorf("explicit selection wrong: %v", only)
	}
	sub, err := ResolveEnabled(nil, []string{report.CodeRedundantFlush})
	if err != nil {
		t.Fatal(err)
	}
	if sub[report.CodeRedundantFlush] || len(sub) != len(All())-1 {
		t.Errorf("disable did not remove exactly one pass: %v", sub)
	}
	if _, err := ResolveEnabled([]string{"DMC-S99"}, nil); err == nil {
		t.Error("unknown -passes ID accepted")
	}
	if _, err := ResolveEnabled(nil, []string{"bogus"}); err == nil {
		t.Error("unknown -disable-pass ID accepted")
	}
}

func TestVersionTracksEnabledSet(t *testing.T) {
	a, _ := ResolveEnabled(nil, nil)
	b, _ := ResolveEnabled(nil, []string{report.CodeDynRAW})
	va, vb := Version(a), Version(b)
	if va == vb {
		t.Error("version does not change with the enabled set")
	}
	a2, _ := ResolveEnabled(nil, nil)
	if Version(a2) != va {
		t.Error("version not deterministic for an identical enabled set")
	}
}

func TestDisabledProjections(t *testing.T) {
	en, _ := ResolveEnabled(nil, []string{report.CodeRedundantFlush, report.CodeDynRAW})
	dr := DisabledStaticRules(en)
	if !dr[report.RuleRedundantFlush] || len(dr) != 1 {
		t.Errorf("static projection wrong: %v", dr)
	}
	dc := DisabledDynamicCodes(en)
	if !dc[report.CodeDynRAW] || len(dc) != 1 {
		t.Errorf("dynamic projection wrong: %v", dc)
	}
	// Disabling the static strand pass must not touch the dynamic ones
	// (same rule, different passes).
	en2, _ := ResolveEnabled(nil, []string{report.CodeStrandDependence})
	if DisabledDynamicCodes(en2) != nil {
		t.Error("disabling DMC-S07 leaked into the dynamic detectors")
	}
	if DisabledStaticRules(nil) != nil || DisabledDynamicCodes(nil) != nil {
		t.Error("nil enabled set must disable nothing")
	}
}

func TestListMentionsEveryPass(t *testing.T) {
	s := List()
	for _, p := range All() {
		if !strings.Contains(s, p.ID) {
			t.Errorf("listing misses %s", p.ID)
		}
	}
	for _, col := range []string{"ID", "KIND", "MODELS", "CONTRACTS", "SEV", "RULE"} {
		if !strings.Contains(s, col) {
			t.Errorf("listing misses header column %s", col)
		}
	}
}

// TestContractApplicability pins the contract column: DMC-S03 is
// x86-only, the DMC-Xxx passes are CXL-only, everything else applies
// under both contracts.
func TestContractApplicability(t *testing.T) {
	for _, p := range All() {
		var want ContractSet
		switch p.ID {
		case report.CodeMissingBarrier:
			want = CX86
		case report.CodeFlushInDomain, report.CodeMissingGlobalBarrier:
			want = CCXL
		default:
			want = CBoth
		}
		if p.Contracts.normalize() != want {
			t.Errorf("%s contracts = %s, want %s", p.ID, p.Contracts, want)
		}
	}
}

func TestResolveEnabledFor(t *testing.T) {
	x86, err := ResolveEnabledFor(nil, nil, pmcontract.X86)
	if err != nil {
		t.Fatal(err)
	}
	if x86[report.CodeFlushInDomain] || x86[report.CodeMissingGlobalBarrier] {
		t.Errorf("x86 default set contains CXL-only passes: %v", x86)
	}
	if !x86[report.CodeMissingBarrier] {
		t.Errorf("x86 default set dropped DMC-S03")
	}

	cxl, err := ResolveEnabledFor(nil, nil, pmcontract.CXL)
	if err != nil {
		t.Fatal(err)
	}
	if cxl[report.CodeMissingBarrier] {
		t.Errorf("cxl default set contains x86-only DMC-S03")
	}
	if !cxl[report.CodeFlushInDomain] || !cxl[report.CodeMissingGlobalBarrier] {
		t.Errorf("cxl default set dropped the DMC-Xxx passes: %v", cxl)
	}

	// Explicitly selecting an inapplicable pass must error, not no-op.
	if _, err := ResolveEnabledFor([]string{report.CodeMissingBarrier}, nil, pmcontract.CXL); err == nil {
		t.Error("selecting DMC-S03 under cxl silently no-oped")
	}
	if _, err := ResolveEnabledFor(nil, []string{report.CodeFlushInDomain}, pmcontract.X86); err == nil {
		t.Error("disabling DMC-X01 under x86 silently no-oped")
	}
	// Applicable explicit selections still work.
	only, err := ResolveEnabledFor([]string{report.CodeUnflushedWrite}, nil, pmcontract.CXL)
	if err != nil || len(only) != 1 {
		t.Errorf("applicable selection failed: %v, %v", only, err)
	}
	// The contract changes the default enabled set, so Version must too.
	if Version(x86) == Version(cxl) {
		t.Error("x86 and cxl default sets hash identically")
	}
}
