package passes

import "deepmc/internal/report"

// registry holds every checking rule of the paper: Table 4 (persistency
// model violations), Table 5 (performance bugs) and the two dynamic
// happens-before detectors of §4.4.  Append-only: IDs are stable
// external contract.
var registry = []Pass{
	{
		ID: report.CodeUnflushedWrite, Rule: report.RuleUnflushedWrite,
		Kind: Static, Models: MAll, Severity: SevError,
		Doc: "persistent write never covered by a flush or undo log before its barrier/region ends",
	},
	{
		ID: report.CodeMultipleWritesAtOnce, Rule: report.RuleMultipleWritesAtOnce,
		Kind: Static, Models: MAll, Severity: SevError,
		Doc: "one persist barrier makes several writes (or several epochs) durable at once",
	},
	{
		ID: report.CodeMissingBarrier, Rule: report.RuleMissingBarrier,
		Kind: Static, Models: MStrict, Contracts: CX86, Severity: SevError,
		Doc: "flush with no persist barrier before the next transaction or path end",
	},
	{
		ID: report.CodeMissingBarrierEpochs, Rule: report.RuleMissingBarrierBetweenEpochs,
		Kind: Static, Models: MEpoch | MStrand, Severity: SevError,
		Doc: "consecutive epochs not separated by a persist barrier",
	},
	{
		ID: report.CodeMissingBarrierNested, Rule: report.RuleMissingBarrierNestedTx,
		Kind: Static, Models: MEpoch | MStrand, Severity: SevError,
		Doc: "nested transaction ends without a persist barrier",
	},
	{
		ID: report.CodeSemanticMismatch, Rule: report.RuleSemanticMismatch,
		Kind: Static, Models: MAll, Severity: SevError,
		Doc: "consecutive transactions/epochs split one semantic update across persistence units",
	},
	{
		ID: report.CodeStrandDependence, Rule: report.RuleStrandDependence,
		Kind: Static, Models: MStrand, Severity: SevError,
		Doc: "statically overlapping writes from concurrent strands (WAW dependence)",
	},
	{
		ID: report.CodeFlushUnmodified, Rule: report.RuleFlushUnmodified,
		Kind: Static, Models: MAll, Severity: SevPerf,
		Doc: "flush writes back data no preceding write modified",
	},
	{
		ID: report.CodeRedundantFlush, Rule: report.RuleRedundantFlush,
		Kind: Static, Models: MAll, Severity: SevPerf,
		Doc: "flush repeats an earlier write-back with no modification in between",
	},
	{
		ID: report.CodeDurableTxNoWrite, Rule: report.RuleDurableTxNoWrite,
		Kind: Static, Models: MAll, Severity: SevPerf,
		Doc: "durable transaction contains no persistent writes",
	},
	{
		ID: report.CodeMultiplePersist, Rule: report.RuleMultiplePersist,
		Kind: Static, Models: MAll, Severity: SevPerf,
		Doc: "object persisted multiple times within one transaction",
	},
	{
		ID: report.CodeFlushInDomain, Rule: report.RuleFlushInPersistDomain,
		Kind: Static, Models: MAll, Contracts: CCXL, Severity: SevPerf,
		Doc: "flush of device-persistence-domain data (durable at store time; the clwb buys nothing)",
	},
	{
		ID: report.CodeMissingGlobalBarrier, Rule: report.RuleMissingGlobalBarrier,
		Kind: Static, Models: MAll, Contracts: CCXL, Severity: SevError,
		Doc: "persistence-domain write never committed by a global persist barrier (lost on device failure)",
	},
	{
		ID: report.CodeDynWAW, Rule: report.RuleStrandDependence,
		Kind: Dynamic, Models: MStrand, Severity: SevError,
		Doc: "runtime write-after-write dependence between unordered strands",
	},
	{
		ID: report.CodeDynRAW, Rule: report.RuleStrandDependence,
		Kind: Dynamic, Models: MStrand, Severity: SevError,
		Doc: "runtime read-write dependence between unordered strands",
	},
	{
		ID: report.CodeDynUnflushedRAW, Rule: report.RuleStrandDependence,
		Kind: Dynamic, Models: MStrand, Severity: SevError,
		Doc: "runtime read of another strand's never-flushed write (durable side effects built on it are lost by a crash)",
	},
}
