// Package passes is the checking-rule registry: every DeepMC diagnostic
// — the Table 4 persistency-model rules, the Table 5 performance rules,
// and the dynamic happens-before detectors — is a self-describing Pass
// with a stable ID, a model-applicability set, a severity and a doc
// string.  The pass manager in internal/core consults the registry to
// resolve -passes / -disable-pass selections into the rule sets the
// static scanner and the dynamic runtime actually evaluate, and the
// analysis cache folds the registry version plus the enabled set into
// its content hashes, so adding, removing or toggling a pass invalidates
// exactly the verdicts it could change.
//
// Adding a rule is a one-file change: append a Pass literal to
// registry.go (new code, never a reassigned one) and emit the rule from
// the scanner or runtime; listing, selection, suppression and cache
// invalidation follow from the registry entry.
package passes

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"deepmc/internal/pmcontract"
	"deepmc/internal/report"
)

// Kind separates the two analysis families a pass runs in.
type Kind uint8

const (
	// Static passes scan the collected traces offline.
	Static Kind = iota
	// Dynamic passes run inside the instrumented runtime.
	Dynamic
)

// String renders the kind for listings.
func (k Kind) String() string {
	if k == Dynamic {
		return "dynamic"
	}
	return "static"
}

// ModelSet is a bitmask of the persistency models a pass applies to.
type ModelSet uint8

const (
	MStrict ModelSet = 1 << iota
	MEpoch
	MStrand
	// MAll marks model-independent passes.
	MAll = MStrict | MEpoch | MStrand
)

// Has reports whether the set contains the model.
func (s ModelSet) Has(m ModelSet) bool { return s&m != 0 }

// String renders the set as a comma list in strict,epoch,strand order.
func (s ModelSet) String() string {
	var parts []string
	if s.Has(MStrict) {
		parts = append(parts, "strict")
	}
	if s.Has(MEpoch) {
		parts = append(parts, "epoch")
	}
	if s.Has(MStrand) {
		parts = append(parts, "strand")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ContractSet is a bitmask of the hardware persistency contracts a
// pass applies to.  Orthogonal to ModelSet: models (strict/epoch/
// strand) describe the program's ordering discipline, contracts
// describe what the hardware promises about durability.
type ContractSet uint8

const (
	CX86 ContractSet = 1 << iota
	CCXL
	// CBoth marks contract-independent passes.  The zero value reads as
	// CBoth too (see normalize), so pre-contract Pass literals keep
	// applying everywhere.
	CBoth = CX86 | CCXL
)

// normalize maps the zero value to CBoth.
func (s ContractSet) normalize() ContractSet {
	if s == 0 {
		return CBoth
	}
	return s
}

// HasContract reports whether the set covers the contract.
func (s ContractSet) HasContract(id pmcontract.ID) bool {
	s = s.normalize()
	if id == pmcontract.CXL {
		return s&CCXL != 0
	}
	return s&CX86 != 0
}

// String renders the set for the `deepmc passes` CONTRACTS column.
func (s ContractSet) String() string {
	switch s.normalize() {
	case CX86:
		return "x86"
	case CCXL:
		return "cxl"
	default:
		return "both"
	}
}

// Severity grades a pass's findings.
type Severity uint8

const (
	// SevError marks model violations: the program can lose or corrupt
	// durable state across a crash.
	SevError Severity = iota
	// SevPerf marks performance bugs: correct but needlessly slow
	// persistence.
	SevPerf
)

// String renders the severity for listings.
func (s Severity) String() string {
	if s == SevPerf {
		return "perf"
	}
	return "error"
}

// Pass is one self-describing checking rule.
type Pass struct {
	// ID is the stable machine-readable code (report.Code* constant);
	// it doubles as the diagnostic code on every warning the pass emits.
	ID string
	// Rule is the report rule the pass's warnings carry.
	Rule report.Rule
	// Kind says whether the pass runs statically or dynamically.
	Kind Kind
	// Models is the persistency-model applicability set.
	Models ModelSet
	// Contracts is the hardware-contract applicability set (zero value
	// = both).  DMC-S03 (missing-persist-barrier) is x86-only: under
	// CXL its durability obligation re-keys to the global persist
	// barrier, checked by DMC-X02.  The DMC-Xxx passes are CXL-only.
	Contracts ContractSet
	// Severity grades the findings.
	Severity Severity
	// Doc is a one-line description for `deepmc passes`.
	Doc string
}

// schemaVersion versions the registry semantics themselves; bump it when
// the meaning of an existing pass changes (message wording, detection
// scope), so content-hashed caches of older binaries cannot be replayed.
// passes-v2: passes carry a hardware-contract applicability set, DMC-S03
// is scoped to x86, and the CXL-only DMC-Xxx passes exist.
const schemaVersion = "passes-v2"

// All returns every registered pass, ordered by ID.
func All() []Pass {
	out := append([]Pass(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the pass with the given ID.
func ByID(id string) (Pass, bool) {
	for _, p := range registry {
		if p.ID == id {
			return p, true
		}
	}
	return Pass{}, false
}

// StaticByRule returns the static pass emitting the given rule.
func StaticByRule(r report.Rule) (Pass, bool) {
	for _, p := range registry {
		if p.Kind == Static && p.Rule == r {
			return p, true
		}
	}
	return Pass{}, false
}

// IDs returns every registered pass ID, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, p := range registry {
		out = append(out, p.ID)
	}
	sort.Strings(out)
	return out
}

// ResolveEnabled turns an explicit selection (only; empty = all) and a
// disable list into the enabled-pass set.  Unknown IDs are errors, so a
// typo in -passes/-disable-pass cannot silently run the wrong rule set.
func ResolveEnabled(only, disable []string) (map[string]bool, error) {
	enabled := make(map[string]bool, len(registry))
	if len(only) == 0 {
		for _, p := range registry {
			enabled[p.ID] = true
		}
	} else {
		for _, id := range only {
			if _, ok := ByID(id); !ok {
				return nil, fmt.Errorf("passes: unknown pass %q (see `deepmc passes`)", id)
			}
			enabled[id] = true
		}
	}
	for _, id := range disable {
		if _, ok := ByID(id); !ok {
			return nil, fmt.Errorf("passes: unknown pass %q (see `deepmc passes`)", id)
		}
		delete(enabled, id)
	}
	return enabled, nil
}

// ResolveEnabledFor is ResolveEnabled restricted to one hardware
// contract.  Passes inapplicable to the contract are dropped from the
// default-all set silently (they simply do not exist there), but an
// explicit -passes or -disable-pass mention of one is an error — a
// selection that cannot take effect must not silently no-op.
func ResolveEnabledFor(only, disable []string, contract pmcontract.ID) (map[string]bool, error) {
	for _, sel := range [][]string{only, disable} {
		for _, id := range sel {
			p, ok := ByID(id)
			if !ok {
				return nil, fmt.Errorf("passes: unknown pass %q (see `deepmc passes`)", id)
			}
			if !p.Contracts.HasContract(contract) {
				return nil, fmt.Errorf("passes: pass %s (%s) is inapplicable under -pmodel %s (contracts: %s)",
					id, p.Rule, contract, p.Contracts)
			}
		}
	}
	enabled, err := ResolveEnabled(only, disable)
	if err != nil {
		return nil, err
	}
	for _, p := range registry {
		if !p.Contracts.HasContract(contract) {
			delete(enabled, p.ID)
		}
	}
	return enabled, nil
}

// Version fingerprints the registry plus an enabled set: a hex digest
// over the schema version, every registered pass's identity, and the
// sorted enabled IDs.  Cache keys include it, so toggling a pass — or
// shipping a binary with a changed rule set — invalidates exactly the
// verdicts that could differ.
func Version(enabled map[string]bool) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", schemaVersion)
	for _, p := range All() {
		fmt.Fprintf(h, "%s|%s|%s|%s|%s|%s\n", p.ID, p.Rule, p.Kind, p.Models, p.Contracts, p.Severity)
	}
	on := make([]string, 0, len(enabled))
	for id, ok := range enabled {
		if ok {
			on = append(on, id)
		}
	}
	sort.Strings(on)
	fmt.Fprintf(h, "enabled:%s\n", strings.Join(on, ","))
	return hex.EncodeToString(h.Sum(nil))
}

// DisabledStaticRules maps an enabled set to the static rules the
// scanner must not emit.  Nil input (no pass selection) disables
// nothing.
func DisabledStaticRules(enabled map[string]bool) map[report.Rule]bool {
	if enabled == nil {
		return nil
	}
	out := make(map[report.Rule]bool)
	for _, p := range registry {
		if p.Kind == Static && !enabled[p.ID] {
			out[p.Rule] = true
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// DisabledDynamicCodes maps an enabled set to the dynamic detector codes
// the runtime must not emit.  Nil input disables nothing.
func DisabledDynamicCodes(enabled map[string]bool) map[string]bool {
	if enabled == nil {
		return nil
	}
	out := make(map[string]bool)
	for _, p := range registry {
		if p.Kind == Dynamic && !enabled[p.ID] {
			out[p.ID] = true
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// List renders the registry as the `deepmc passes` table.
func List() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-8s %-20s %-9s %-6s %-30s %s\n",
		"ID", "KIND", "MODELS", "CONTRACTS", "SEV", "RULE", "DESCRIPTION")
	for _, p := range All() {
		fmt.Fprintf(&b, "%-9s %-8s %-20s %-9s %-6s %-30s %s\n",
			p.ID, p.Kind, p.Models, p.Contracts, p.Severity, p.Rule, p.Doc)
	}
	return b.String()
}
