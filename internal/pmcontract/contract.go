// Package pmcontract makes the hardware persistency contract a
// first-class value instead of an assumption baked into every layer.
//
// DeepMC's Table 4/5 rules were derived from one contract — x86
// clwb/sfence over volatile cachelines — but "Rethinking PM Crash
// Consistency in the CXL Era" shows the contract changes when PM hangs
// off CXL: persist barriers become global, devices can export a
// persistence domain in which stores are durable at store time (an
// eADR-style energy reserve drains them on power loss), and host and
// device fail independently.  A Contract captures exactly the knobs the
// rest of the stack keys on:
//
//   - durability granularity and flush semantics (does a store need a
//     flush before it can become durable?),
//   - fence semantics (per-thread staged-line drain vs global persist
//     barrier),
//   - the crash-discard rule (what a crash image keeps), and
//   - the failure domains a simulator must enumerate.
//
// The zero Contract value is the x86 contract, so existing
// configuration structs gain contract awareness without breaking any
// caller.
//
// The package is dependency-free by design: nvm, interp, dynamic,
// crashsim, faultinj, passes and the checker all import it, so it must
// sit below every one of them.
package pmcontract

import (
	"fmt"
	"strings"
)

// ID names a hardware persistency contract.
type ID uint8

const (
	// X86 is the classic contract: stores land in volatile cachelines,
	// Flush (clwb) stages a line, Fence (sfence) drains staged lines to
	// the medium, and a crash discards everything dirty or staged.  The
	// zero value — so untouched configs keep their old behavior.
	X86 ID = iota
	// CXL is the CXL-era contract: fences are global persist barriers,
	// and an optional device-side persistence domain makes stores in it
	// durable at store time with no flush.  Host and device fail
	// independently (FailDevice below).
	CXL
)

// Parse maps a -pmodel flag value to an ID.
func Parse(s string) (ID, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "x86":
		return X86, nil
	case "cxl":
		return CXL, nil
	}
	return X86, fmt.Errorf("pmcontract: unknown persistency model %q (want x86|cxl)", s)
}

func (id ID) String() string {
	switch id {
	case X86:
		return "x86"
	case CXL:
		return "cxl"
	}
	return fmt.Sprintf("pmodel(%d)", uint8(id))
}

// Domain is a device-side persistence domain: the address range whose
// stores are durable at store time under the CXL contract.  The zero
// Domain is empty.  Whole marks the entire persistent heap as
// in-domain regardless of Start/Len (the common CXL deployment, and
// what the static checker assumes when it has no address layout).
type Domain struct {
	Whole bool
	// Start/Len bound a partial domain in pool-offset bytes.  Ignored
	// when Whole is set.
	Start, Len int
}

// WholeDomain covers the entire persistent heap.
func WholeDomain() Domain { return Domain{Whole: true} }

// RangeDomain covers [start, start+length).
func RangeDomain(start, length int) Domain { return Domain{Start: start, Len: length} }

// Empty reports whether the domain covers nothing.
func (d Domain) Empty() bool { return !d.Whole && d.Len <= 0 }

// Contains reports whether [addr, addr+size) lies entirely inside the
// domain.  Partial overlap is out-of-domain: a store straddling the
// boundary gets no auto-persist guarantee for any of its bytes, which
// is the conservative reading for a checker.
func (d Domain) Contains(addr, size int) bool {
	if d.Whole {
		return true
	}
	if d.Len <= 0 || size < 0 {
		return false
	}
	return addr >= d.Start && addr+size <= d.Start+d.Len
}

func (d Domain) String() string {
	switch {
	case d.Whole:
		return "whole"
	case d.Len <= 0:
		return "empty"
	default:
		return fmt.Sprintf("[%d,%d)", d.Start, d.Start+d.Len)
	}
}

// Failure is one failure domain a crash simulator must enumerate.
type Failure uint8

const (
	// FailGlobal is full power loss.  Under x86 it discards dirty and
	// staged lines; under CXL the persistence domain survives (the
	// energy reserve drains it) while everything outside follows the
	// x86 rule.
	FailGlobal Failure = iota
	// FailHost is a host-only crash (kernel panic, CPU reset) — the
	// device keeps power.  Same discard rule as FailGlobal in this
	// model: the domain survives, host caches do not.  Enumerated
	// separately because the two diverge in richer device models.
	FailHost
	// FailDevice is a device-only failure under CXL: domain stores
	// buffered device-side since the last global persist barrier are
	// lost, rolling the domain back to its last barrier-committed
	// image.  Does not exist under x86 (the "device" is the DIMM the
	// durable image lives on).
	FailDevice
)

func (f Failure) String() string {
	switch f {
	case FailGlobal:
		return "global"
	case FailHost:
		return "host"
	case FailDevice:
		return "device"
	}
	return fmt.Sprintf("failure(%d)", uint8(f))
}

// Contract is one hardware persistency contract: an ID plus its
// configuration.  The zero value is the x86 contract.
type Contract struct {
	ID ID
	// Domain is the device-side persistence domain (CXL only; ignored
	// under x86).
	Domain Domain
}

// X86Contract returns the classic clwb/sfence contract.
func X86Contract() Contract { return Contract{ID: X86} }

// CXLContract returns the CXL-era contract with the given persistence
// domain.  An empty domain yields a contract that is observationally
// identical to x86 for crash images and diagnostics (the equivalence
// the property tests pin down); only the barrier's scope and cost
// differ.
func CXLContract(d Domain) Contract { return Contract{ID: CXL, Domain: d} }

// ParseContract maps a -pmodel flag value to a ready contract: "x86"
// is X86Contract, "cxl" is CXLContract over the whole heap (the
// deployment the CXL papers assume when no layout is given).
func ParseContract(s string) (Contract, error) {
	id, err := Parse(s)
	if err != nil {
		return Contract{}, err
	}
	if id == CXL {
		return CXLContract(WholeDomain()), nil
	}
	return X86Contract(), nil
}

// Name returns the contract's -pmodel name.
func (c Contract) Name() string { return c.ID.String() }

// HasDomain reports whether the contract exposes a non-empty
// persistence domain.
func (c Contract) HasDomain() bool { return c.ID == CXL && !c.Domain.Empty() }

// EffectiveID returns the ID whose RULE SET applies to this contract: a
// CXL contract without a persistence domain is observationally
// identical to x86 — stores need flushes, flushes need barriers — so
// the x86-derived passes (and none of the domain-keyed ones) are the
// applicable set.  Pass-applicability decisions must key on this, not
// on the raw ID, or the empty-domain equivalence property breaks.
func (c Contract) EffectiveID() ID {
	if c.ID == CXL && c.Domain.Empty() {
		return X86
	}
	return c.ID
}

// AutoPersists reports whether a store to [addr, addr+size) is durable
// at store time with no flush, per the contract.
func (c Contract) AutoPersists(addr, size int) bool {
	return c.ID == CXL && c.Domain.Contains(addr, size)
}

// BarrierName renders the contract's fence primitive for diagnostics.
func (c Contract) BarrierName() string {
	if c.ID == CXL {
		return "global persist barrier"
	}
	return "persist barrier (sfence)"
}

// FaultEligible reports whether a fault class (by its faultinj name:
// "torn", "dropped", "reordered", "delayed") can legally fire on
// [addr, addr+size) under the contract.  Inside a persistence domain,
// stores are durable whole at store time, so torn writes cannot exist,
// and there are no flushes to drop.  Reordered/delayed drains concern
// the staged set outside the domain and stay eligible everywhere.
func (c Contract) FaultEligible(class string, addr, size int) bool {
	if !c.AutoPersists(addr, size) {
		return true
	}
	switch class {
	case "torn", "dropped":
		return false
	}
	return true
}

// Failures lists the failure domains a simulator must enumerate under
// this contract.  x86 has one observable crash image; CXL with a
// domain adds the device-failure image (host/global share an image in
// this model but FailHost is listed so enumerators surface the
// distinction explicitly).
func (c Contract) Failures() []Failure {
	if c.HasDomain() {
		return []Failure{FailGlobal, FailHost, FailDevice}
	}
	return []Failure{FailGlobal}
}

// Key returns a stable fingerprint string for cache keys and schedule
// attribution.  Two contracts with equal Keys produce identical crash
// images and diagnostics for the same program.
func (c Contract) Key() string {
	return fmt.Sprintf("pm=%s;dom=%s", c.ID, c.Domain)
}
