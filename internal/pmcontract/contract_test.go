package pmcontract

import "testing"

func TestZeroValueIsX86(t *testing.T) {
	var c Contract
	if c.ID != X86 || c.Name() != "x86" {
		t.Fatalf("zero Contract = %+v, want x86", c)
	}
	if c.HasDomain() || c.AutoPersists(0, 8) {
		t.Fatalf("zero Contract must not expose a persistence domain")
	}
	if got := c.Failures(); len(got) != 1 || got[0] != FailGlobal {
		t.Fatalf("x86 failures = %v, want [global]", got)
	}
}

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ID
		err  bool
	}{
		{"x86", X86, false},
		{"", X86, false},
		{"CXL", CXL, false},
		{" cxl ", CXL, false},
		{"arm", X86, true},
	} {
		got, err := Parse(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("Parse(%q) err = %v, want err=%v", tc.in, err, tc.err)
		}
		if err == nil && got != tc.want {
			t.Errorf("Parse(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := ParseContract("bogus"); err == nil {
		t.Fatalf("ParseContract(bogus) should error")
	}
	c, err := ParseContract("cxl")
	if err != nil || !c.HasDomain() || !c.Domain.Whole {
		t.Fatalf("ParseContract(cxl) = %+v, %v; want whole-domain CXL", c, err)
	}
}

func TestDomainContains(t *testing.T) {
	d := RangeDomain(64, 128) // [64, 192)
	for _, tc := range []struct {
		addr, size int
		want       bool
	}{
		{64, 8, true},
		{184, 8, true},
		{64, 128, true},
		{60, 8, false},  // straddles the start boundary
		{188, 8, false}, // straddles the end boundary
		{0, 8, false},
		{192, 8, false},
	} {
		if got := d.Contains(tc.addr, tc.size); got != tc.want {
			t.Errorf("Contains(%d,%d) = %v, want %v", tc.addr, tc.size, got, tc.want)
		}
	}
	if !WholeDomain().Contains(1<<30, 4096) {
		t.Fatalf("whole domain must contain everything")
	}
	if (Domain{}).Contains(0, 0) {
		t.Fatalf("empty domain must contain nothing")
	}
	if !(Domain{}).Empty() || WholeDomain().Empty() || d.Empty() {
		t.Fatalf("Empty() misclassifies domains")
	}
}

func TestCXLSemantics(t *testing.T) {
	c := CXLContract(RangeDomain(0, 256))
	if !c.AutoPersists(0, 256) || c.AutoPersists(256, 8) {
		t.Fatalf("AutoPersists ignores the domain bounds")
	}
	if got := c.Failures(); len(got) != 3 {
		t.Fatalf("CXL-with-domain failures = %v, want global+host+device", got)
	}
	if c.BarrierName() != "global persist barrier" {
		t.Fatalf("BarrierName = %q", c.BarrierName())
	}

	empty := CXLContract(Domain{})
	if empty.HasDomain() || empty.AutoPersists(0, 8) {
		t.Fatalf("empty-domain CXL must not auto-persist")
	}
	if got := empty.Failures(); len(got) != 1 || got[0] != FailGlobal {
		t.Fatalf("empty-domain CXL failures = %v, want [global]", got)
	}
}

func TestFaultEligible(t *testing.T) {
	c := CXLContract(WholeDomain())
	if c.FaultEligible("torn", 0, 16) || c.FaultEligible("dropped", 64, 8) {
		t.Fatalf("torn/dropped must be ineligible inside a persistence domain")
	}
	if !c.FaultEligible("reordered", 0, 16) || !c.FaultEligible("delayed", 0, 16) {
		t.Fatalf("reordered/delayed stay eligible under CXL")
	}
	x86 := X86Contract()
	for _, cl := range []string{"torn", "dropped", "reordered", "delayed"} {
		if !x86.FaultEligible(cl, 0, 16) {
			t.Fatalf("all classes eligible under x86, %q was not", cl)
		}
	}
	part := CXLContract(RangeDomain(0, 64))
	if part.FaultEligible("torn", 0, 64) {
		t.Fatalf("in-domain torn write must be ineligible")
	}
	if !part.FaultEligible("torn", 64, 16) {
		t.Fatalf("out-of-domain torn write must stay eligible")
	}
}

func TestKeyStability(t *testing.T) {
	a := X86Contract()
	b := CXLContract(WholeDomain())
	c := CXLContract(Domain{})
	d := CXLContract(RangeDomain(64, 128))
	keys := map[string]bool{a.Key(): true, b.Key(): true, c.Key(): true, d.Key(): true}
	if len(keys) != 4 {
		t.Fatalf("contract keys collide: %v", keys)
	}
	if a.Key() != X86Contract().Key() {
		t.Fatalf("Key must be deterministic")
	}
}
